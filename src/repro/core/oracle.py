"""The evaluation oracle: measure candidate mappings like the real system.

One ``evaluate`` call corresponds to AutoMap asking the runtime to execute
the application under a candidate mapping.  The oracle reproduces the
measurement protocol of §5 and the accounting of §5.3:

* every candidate is *suggested*; invalid candidates (addressability /
  variant violations) are rejected with a high value without execution;
* previously-measured candidates return their recorded profile (dedup);
* new valid candidates are executed ``runs_per_eval`` times (default 7)
  and the average is the reported performance; out-of-memory failures
  are recorded and reported as failed;
* a simulated search clock advances by the measured sample times plus a
  per-suggestion overhead, giving Figure 9's x-axis (search time) and
  §5.3's evaluating-time fraction without needing hours of wall clock.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.analysis.bounds import FLOAT_SAFETY
from repro.obs.metrics import MetricsRegistry, WallBudget
from repro.resilience.checkpoint import ReplayEntry
from repro.runtime.executor import ExecutionReport

from repro.core.profiles import ProfileDatabase
from repro.mapping.mapping import Mapping
from repro.mapping.validate import explain_invalid
from repro.runtime.memory import OOMError
from repro.runtime.simulator import Simulator
from repro.search.base import INFEASIBLE, EvalOutcome, TracePoint
from repro.util.logging import get_logger, kv

__all__ = ["OracleConfig", "SimulationOracle"]

_LOG = get_logger("core.oracle")


@dataclass(frozen=True)
class OracleConfig:
    """Measurement protocol and budget for one search.

    Attributes
    ----------
    runs_per_eval:
        Noisy executions averaged per candidate (paper: 7).
    suggestion_overhead:
        Simulated seconds of driver/tuner overhead charged per suggestion.
        Generic tuners pay this ~157 000 times on Pennant while CCD pays
        it ~2 000 times — the mechanism behind §5.3's "OpenTuner spends
        as little as 13 % of the search time evaluating candidates".
    max_evaluations:
        Stop after this many *executed* candidates (None = unlimited).
    max_suggestions:
        Stop after this many suggestions, executed or not (None =
        unlimited) — bounds tuners whose duplicate/invalid proposals
        never count as evaluations.
    max_sim_seconds:
        Stop once the simulated search clock passes this (None =
        unlimited) — the paper's time-limited search mode (§3.3).
    max_wall_seconds:
        Real wall-clock safety limit (None = unlimited).
    metric:
        Optional objective extracting a scalar (lower = better) from the
        execution report.  Defaults to total makespan; §5.1's Maestro
        experiment minimises the finish time of the high-fidelity kinds
        only ("AutoMap is suitable for minimizing other metrics", §3.3).
    """

    runs_per_eval: int = 7
    suggestion_overhead: float = 1e-3
    max_evaluations: Optional[int] = None
    max_suggestions: Optional[int] = None
    max_sim_seconds: Optional[float] = None
    max_wall_seconds: Optional[float] = None
    metric: Optional[Callable[[ExecutionReport], float]] = None


class SimulationOracle:
    """Concrete :class:`repro.search.base.Oracle` over the simulator."""

    def __init__(
        self,
        simulator: Simulator,
        config: Optional[OracleConfig] = None,
        profiles: Optional[ProfileDatabase] = None,
        canonicalizer=None,
        feasibility=None,
        bounds=None,
    ) -> None:
        self.simulator = simulator
        self.config = config or OracleConfig()
        self.profiles = profiles if profiles is not None else ProfileDatabase()
        #: optional :class:`repro.analysis.canonical.Canonicalizer`:
        #: valid candidates are folded onto their canonical equivalence
        #: representative before lookup/execution, so equivalent
        #: suggestions share one profile record.
        self.canonicalizer = canonicalizer
        #: optional :class:`repro.analysis.memfeas.StaticMemoryFeasibility`:
        #: candidates statically proven to overflow memory short-circuit
        #: to the same failed outcome the runtime OOM would produce,
        #: without paying for a simulation.  Only sound when the
        #: simulator fails (rather than spills) on overflow, so the
        #: driver gates it on ``spill=False``.
        self.feasibility = feasibility
        #: optional :class:`repro.analysis.bounds.StaticBoundAnalyzer`:
        #: once an incumbent exists, candidates whose sound makespan
        #: lower bound already meets or exceeds it are rejected without
        #: simulation.  Because the bound provably under-estimates the
        #: measured mean and every search accepts only strict
        #: improvements, the pruned search takes the exact same
        #: trajectory as the unpruned one.  The driver gates this on
        #: algorithms that only *compare* outcomes (CD/CCD/random) and
        #: on the default makespan metric.
        self.bounds = bounds
        #: All evaluation accounting lives in one metrics registry
        #: (:mod:`repro.obs.metrics`); the attribute-style reads the
        #: rest of the system does (``oracle.suggested``, ...) are
        #: registry-backed properties below.  Metrics are derived state:
        #: checkpoints serialize them for inspection but resume never
        #: restores them — the deterministic replay re-derives every
        #: value, which is what keeps resume bit-identical.
        self.metrics = MetricsRegistry()
        self._suggested = self.metrics.counter("oracle.suggested")
        self._evaluated = self.metrics.counter("oracle.evaluated")
        self._invalid = self.metrics.counter("oracle.invalid_suggestions")
        self._failed = self.metrics.counter("oracle.failed_evaluations")
        #: suggestions folded onto a different canonical mapping.
        self._folds = self.metrics.counter("oracle.canonical_folds")
        #: failed evaluations proven statically (no simulation paid).
        self._pruned = self.metrics.counter("oracle.static_oom_pruned")
        #: candidates rejected because their static lower bound proved
        #: they cannot beat the incumbent (no simulation paid).
        self._bound_pruned = self.metrics.counter("oracle.bound_pruned")
        #: pruned candidates evaluated after the search because they
        #: could have reached the final-candidate stage.
        self._bound_settled = self.metrics.counter("oracle.bound_settled")
        #: simulated search clock (seconds).
        self._sim_elapsed = self.metrics.counter("oracle.sim_elapsed")
        #: simulated seconds spent executing candidates (vs suggesting).
        self._sim_evaluating = self.metrics.counter("oracle.sim_evaluating")
        #: Evaluations served from the replay ledger (reporting only).
        self._replayed = self.metrics.counter("oracle.replayed")
        #: Deterministic makespans of executed candidates.
        self._makespans = self.metrics.histogram("oracle.eval_makespan")
        self._best_gauge = self.metrics.gauge("oracle.best_performance")
        self.best_performance = math.inf
        self.best_mapping: Optional[Mapping] = None
        self.trace: List[TracePoint] = []
        self._wall = WallBudget(max_seconds=self.config.max_wall_seconds)
        #: Post-evaluation hooks (checkpoint managers, test probes);
        #: each is called with the oracle after every ``evaluate``.
        self.observers: List[Callable[["SimulationOracle"], None]] = []
        #: Resume support: evaluations reconstructed from a checkpoint,
        #: consumed the first time the replayed search re-suggests them.
        self._replay: Dict[tuple, ReplayEntry] = {}
        #: Bound-pruned candidates in pruning order (canonical key →
        #: mapping), revisited by :meth:`settle_pruned`.
        self._bound_ledger: Dict[tuple, Mapping] = {}
        #: Per-candidate bound on measured mean (None = no sound bound).
        self._bound_cache: Dict[tuple, Optional[float]] = {}
        #: Keys whose profile records exist only because of settling —
        #: excluded from checkpoint replay ledgers, since an
        #: uninterrupted run never *evaluated* them.
        self._settled_keys: set = set()

    # ------------------------------------------------------------------
    # Registry-backed accounting (attribute API preserved)
    # ------------------------------------------------------------------
    @property
    def suggested(self) -> int:
        return self._suggested.value

    @property
    def evaluated(self) -> int:
        return self._evaluated.value

    @property
    def invalid_suggestions(self) -> int:
        return self._invalid.value

    @property
    def failed_evaluations(self) -> int:
        return self._failed.value

    @property
    def canonical_folds(self) -> int:
        return self._folds.value

    @property
    def static_oom_pruned(self) -> int:
        return self._pruned.value

    @property
    def sim_elapsed(self) -> float:
        return self._sim_elapsed.value

    @property
    def sim_evaluating(self) -> float:
        return self._sim_evaluating.value

    @property
    def replayed(self) -> int:
        return self._replayed.value

    @property
    def bound_pruned(self) -> int:
        return self._bound_pruned.value

    @property
    def bound_settled(self) -> int:
        return self._bound_settled.value

    @property
    def symmetry_folds(self) -> int:
        """Canonicalizations the machine-symmetry orbit fold changed
        (a subset of :attr:`canonical_folds`; 0 without a
        canonicalizer).  Deterministic across resume: the fold runs
        before the replay ledger is consulted."""
        if self.canonicalizer is None:
            return 0
        return getattr(self.canonicalizer, "symmetry_folds", 0)

    @property
    def bound_gap_ratio(self) -> float:
        """Mean routed-vs-incident tightening over the bounds this
        oracle computed (1.0 without a bound analyzer)."""
        if self.bounds is None:
            return 1.0
        return getattr(self.bounds, "bound_gap_ratio", 1.0)

    @property
    def settled_keys(self) -> frozenset:
        """Canonical keys of profile records created by settling."""
        return frozenset(self._settled_keys)

    # ------------------------------------------------------------------
    @property
    def exhausted(self) -> bool:
        cfg = self.config
        if (
            cfg.max_evaluations is not None
            and self.evaluated >= cfg.max_evaluations
        ):
            return True
        if (
            cfg.max_suggestions is not None
            and self.suggested >= cfg.max_suggestions
        ):
            return True
        if (
            cfg.max_sim_seconds is not None
            and self.sim_elapsed >= cfg.max_sim_seconds
        ):
            return True
        return self._wall.exhausted

    @property
    def evaluation_fraction(self) -> float:
        """Fraction of the simulated search time spent evaluating
        candidate mappings (§5.3)."""
        if self.sim_elapsed <= 0:
            return 0.0
        return self.sim_evaluating / self.sim_elapsed

    def canonical(self, mapping: Mapping) -> Mapping:
        """The representative actually measured for ``mapping`` (the
        mapping itself without a canonicalizer)."""
        if self.canonicalizer is None:
            return mapping
        return self.canonicalizer.canonical(mapping)

    # ------------------------------------------------------------------
    # Resume: the replay ledger (see repro.resilience.checkpoint)
    # ------------------------------------------------------------------
    def install_replay(self, entries: Dict[tuple, ReplayEntry]) -> None:
        """Install checkpointed evaluations for deterministic replay.

        When the resumed search first re-suggests a ledgered mapping,
        the oracle reproduces the original execution from the entry —
        identical samples, clock advance, counters, and trace point —
        without running the simulator.  Because every search algorithm
        is a deterministic function of the oracle's answers, the
        replayed run retraces the original trajectory exactly and then
        seamlessly continues past the checkpoint.
        """
        self._replay = dict(entries)

    def replay_pending(self, mapping: Mapping) -> bool:
        """Whether ``mapping`` has a not-yet-consumed ledger entry (the
        batch layer skips prefetching those — replay is free)."""
        return bool(self._replay) and mapping.key() in self._replay

    def pending_replay_entries(self) -> List[ReplayEntry]:
        """Ledger entries the replayed search has not reached yet
        (carried forward when a resumed run is checkpointed again)."""
        return list(self._replay.values())

    def _replay_execution(
        self, mapping: Mapping, entry: ReplayEntry
    ) -> EvalOutcome:
        """Reproduce one checkpointed execution, advancing every piece
        of accounting exactly as the original execution did."""
        self._replayed.inc()
        if entry.failed:
            self._failed.inc()
            if entry.static_oom:
                self._pruned.inc()
            self.profiles.record(
                mapping,
                [],
                failed=True,
                reason=entry.reason,
                static_oom=entry.static_oom,
            )
            return EvalOutcome(
                performance=INFEASIBLE, failed=True, reason=entry.reason
            )
        samples = list(entry.samples)
        eval_seconds = entry.makespan * self.config.runs_per_eval
        self._sim_elapsed.inc(eval_seconds)
        self._sim_evaluating.inc(eval_seconds)
        self._evaluated.inc()
        self._makespans.observe(entry.makespan)
        performance = sum(samples) / len(samples)
        self.profiles.record(mapping, samples, makespan=entry.makespan)
        if performance < self.best_performance:
            self.best_performance = performance
            self.best_mapping = mapping
            self._best_gauge.set(performance)
        self.trace.append(
            TracePoint(
                elapsed=self.sim_elapsed,
                evaluations=self.evaluated,
                suggested=self.suggested,
                best_performance=self.best_performance,
            )
        )
        return EvalOutcome(performance=performance)

    def _notify(self) -> None:
        for observer in self.observers:
            observer(self)

    # ------------------------------------------------------------------
    def evaluate(self, mapping: Mapping) -> EvalOutcome:
        """Measure one candidate per the protocol described above."""
        outcome = self._evaluate(mapping)
        self._notify()
        return outcome

    def _evaluate(self, mapping: Mapping) -> EvalOutcome:
        self._suggested.inc()
        self._sim_elapsed.inc(self.config.suggestion_overhead)

        reason = explain_invalid(
            self.simulator.graph, self.simulator.machine, mapping
        )
        if reason is not None:
            self._invalid.inc()
            return EvalOutcome(
                performance=INFEASIBLE, invalid=True, reason=reason
            )

        canonical = self.canonical(mapping)
        if canonical.key() != mapping.key():
            self._folds.inc()
        mapping = canonical

        record = self.profiles.lookup(mapping)
        if record is not None:
            if record.failed:
                return EvalOutcome(
                    performance=INFEASIBLE,
                    failed=True,
                    cached=True,
                    reason=record.reason,
                )
            return EvalOutcome(performance=record.mean, cached=True)

        if self._replay:
            entry = self._replay.pop(mapping.key(), None)
            if entry is not None:
                return self._replay_execution(mapping, entry)

        if self.feasibility is not None:
            oom = self.feasibility.oom_reason(mapping)
            if oom is not None:
                # Same accounting and (byte-identical) reason as the
                # runtime OOM below — just without the simulation.
                self._failed.inc()
                self._pruned.inc()
                self.profiles.record(
                    mapping, [], failed=True, reason=oom, static_oom=True
                )
                return EvalOutcome(
                    performance=INFEASIBLE, failed=True, reason=oom
                )

        if self.would_bound_prune(mapping):
            lb_perf = self._bound_perf(mapping)
            self._bound_pruned.inc()
            self._bound_ledger.setdefault(mapping.key(), mapping)
            # Not recorded in profiles: the measured mean is unknown.
            # The pessimistic-but-sound performance makes every
            # strict-improvement search reject the candidate exactly as
            # a real measurement would have.
            return EvalOutcome(
                performance=lb_perf,
                reason=(
                    f"bound-pruned: static lower bound {lb_perf:.6g}s >= "
                    f"incumbent best {self.best_performance:.6g}s"
                ),
            )

        try:
            result = self.simulator.run(mapping)
        except OOMError as exc:
            self._failed.inc()
            self.profiles.record(mapping, [], failed=True, reason=str(exc))
            return EvalOutcome(
                performance=INFEASIBLE, failed=True, reason=str(exc)
            )

        samples = self._measure(mapping, result.report, result.makespan, 0)
        # The search clock pays for whole-application runs regardless of
        # which component the objective metric extracts.
        eval_seconds = result.makespan * self.config.runs_per_eval
        self._sim_elapsed.inc(eval_seconds)
        self._sim_evaluating.inc(eval_seconds)
        self._evaluated.inc()
        self._makespans.observe(result.makespan)
        performance = sum(samples) / len(samples)
        self.profiles.record(mapping, samples, makespan=result.makespan)
        if performance < self.best_performance:
            self.best_performance = performance
            self.best_mapping = mapping
            self._best_gauge.set(performance)
            _LOG.debug(
                kv("new-best", perf=performance, evaluated=self.evaluated)
            )
        self.trace.append(
            TracePoint(
                elapsed=self.sim_elapsed,
                evaluations=self.evaluated,
                suggested=self.suggested,
                best_performance=self.best_performance,
            )
        )
        return EvalOutcome(performance=performance)

    # ------------------------------------------------------------------
    # Bound-based pruning (see repro.analysis.bounds)
    # ------------------------------------------------------------------
    def _bound_perf(self, mapping: Mapping) -> Optional[float]:
        """A sound lower bound on the mean performance :meth:`_evaluate`
        would report for ``mapping`` (already canonical), or ``None``
        when no sound bound exists.

        The makespan bound is priced on the mapping the simulator would
        actually execute (spill demotions applied) and scaled by the
        candidate's exact mean noise factor; the extra ``FLOAT_SAFETY``
        deflation dwarfs the rounding of the sample-mean sum.
        """
        key = mapping.key()
        if key in self._bound_cache:
            return self._bound_cache[key]
        try:
            executed = self.simulator.spill_plan(mapping)
        except OOMError:
            # Let the normal path record the runtime OOM failure.
            value: Optional[float] = None
        else:
            lower = self.bounds.lower_bound(executed)
            factor = self.simulator.noise.mean_factor(
                key, self.config.runs_per_eval
            )
            value = lower * factor * FLOAT_SAFETY
        self._bound_cache[key] = value
        return value

    def would_bound_prune(self, mapping: Mapping) -> bool:
        """Whether :meth:`evaluate` would reject ``mapping`` (canonical)
        on its static bound right now.  Used by the batch layer to skip
        prefetching doomed candidates; monotone over a search, since the
        incumbent only improves."""
        if self.bounds is None or self.config.metric is not None:
            return False
        best = self.best_performance
        if not math.isfinite(best):
            return False
        lb_perf = self._bound_perf(mapping)
        return lb_perf is not None and lb_perf >= best

    def settle_pruned(self, top_n: int) -> int:
        """Measure the pruned candidates that could reach the top-``n``
        final-candidate stage, so the profiles database ranks finalists
        exactly as an unpruned run would.

        A pruned candidate is skipped only when its bound already
        exceeds the ``top_n``-th best recorded mean: its true mean is
        then provably worse, so it could not be a finalist in the
        unpruned run either.  Candidates settle best-bound-first and
        the cut-off is recomputed after every new record — each settled
        mean can only tighten (never relax) the ``top_n``-th best, so a
        skip against an intermediate threshold implies a skip against
        the final one, and the surviving top-``n`` is exactly the
        unpruned run's.  Settled candidates get the exact offset-0
        samples :meth:`_evaluate` would have drawn; search accounting
        (evaluated/failed counters, clocks, trace, best) is
        deliberately untouched — settling happens after the search.
        """
        settled = 0
        if not self._bound_ledger:
            return settled

        def threshold() -> float:
            ranked = self.profiles.best(top_n)
            return ranked[-1].mean if len(ranked) >= top_n else math.inf

        pending = list(self._bound_ledger.items())
        # Best-bound-first; the stable sort keeps equal bounds in
        # pruning order, so the settle order is deterministic.  An
        # unboundable candidate can never be excluded — settle it first.
        pending.sort(
            key=lambda item: (
                -math.inf
                if self._bound_perf(item[1]) is None
                else self._bound_perf(item[1])
            )
        )
        for key, mapping in pending:
            if self.profiles.lookup(mapping) is not None:
                continue
            lb_perf = self._bound_perf(mapping)
            if lb_perf is not None and lb_perf > threshold():
                # Bounds are sorted ascending and the threshold only
                # tightens: every remaining candidate is excluded too.
                break
            if self.feasibility is not None:
                oom = self.feasibility.oom_reason(mapping)
                if oom is not None:
                    self.profiles.record(
                        mapping, [], failed=True, reason=oom, static_oom=True
                    )
                    self._settled_keys.add(key)
                    self._bound_settled.inc()
                    settled += 1
                    continue
            try:
                result = self.simulator.run(mapping)
            except OOMError as exc:
                self.profiles.record(
                    mapping, [], failed=True, reason=str(exc)
                )
            else:
                samples = self._measure(
                    mapping, result.report, result.makespan, 0
                )
                self.profiles.record(
                    mapping, samples, makespan=result.makespan
                )
            self._settled_keys.add(key)
            self._bound_settled.inc()
            settled += 1
        return settled

    # ------------------------------------------------------------------
    def kind_runtimes(self, mapping: Mapping) -> Dict[str, float]:
        """Per-kind busy seconds under ``mapping`` — the profiling signal
        used to order tasks by runtime (Alg. 1 line 6).  Falls back to
        total FLOPs when the mapping cannot execute."""
        mapping = self.canonical(mapping)
        try:
            result = self.simulator.run(mapping)
        except OOMError:
            return self.simulator.graph.kind_flops()
        return dict(result.report.kind_busy)

    def measure_more(self, mapping: Mapping, runs: int) -> List[float]:
        """Additional measurement runs for final reporting (§5: the top
        5 mappings are re-run 30+ times)."""
        mapping = self.canonical(mapping)
        result = self.simulator.run(mapping)
        record = self.profiles.lookup(mapping)
        offset = record.count if record is not None else 0
        samples = self._measure(
            mapping, result.report, result.makespan, offset, runs=runs
        )
        self.profiles.record(mapping, samples)
        self._sim_elapsed.inc(result.makespan * runs)
        self._sim_evaluating.inc(result.makespan * runs)
        return samples

    def _measure(
        self,
        mapping: Mapping,
        report,
        makespan: float,
        offset: int,
        runs: Optional[int] = None,
    ) -> List[float]:
        """Fresh noisy samples of the objective metric; ``offset`` keeps
        draws non-overlapping with earlier measurements of the same
        mapping."""
        base = (
            self.config.metric(report)
            if self.config.metric is not None
            else makespan
        )
        count = self.config.runs_per_eval if runs is None else runs
        return [
            self.simulator.noise.sample(base, mapping.key(), offset + i)
            for i in range(count)
        ]
