"""AutoMap itself (paper §3, Figure 4).

Two components: the **mapper**, which interacts with the runtime to apply
a candidate mapping and collect performance profiles, and the **driver**,
which owns the search algorithms and the profiles database and decides
which mapping to execute and evaluate next.

Public surface:

- :class:`~repro.core.session.AutoMapSession` — the one-call user API
  ("AutoMap requires no modification to the application", §3.3);
- :class:`~repro.core.driver.AutoMapDriver` — search orchestration with
  budgets and the final top-5 re-evaluation protocol of §5;
- :class:`~repro.core.oracle.SimulationOracle` — the evaluation oracle
  (repeated noisy runs, averaging, dedup, invalid/OOM rejection);
- :class:`~repro.core.profiles.ProfileDatabase` — per-mapping performance
  samples with JSON persistence;
- :mod:`~repro.core.spacefile` — the search-space representation file
  produced by profiling the application once (§3.3);
- :class:`~repro.core.mapper.AutoMapMapper` — the runtime-facing mapping
  interface (Legion-mapper-style callbacks).
"""

from repro.core.oracle import OracleConfig, SimulationOracle
from repro.core.profiles import ProfileDatabase, ProfileRecord
from repro.core.engine import TuneRequest, TuningEngine, TuningReport
from repro.core.driver import AutoMapDriver
from repro.core.mapper import AutoMapMapper
from repro.core.session import AutoMapSession
from repro.core.spacefile import generate_space_file, load_space_file

__all__ = [
    "SimulationOracle",
    "OracleConfig",
    "ProfileDatabase",
    "ProfileRecord",
    "AutoMapDriver",
    "TuneRequest",
    "TuningEngine",
    "TuningReport",
    "AutoMapMapper",
    "AutoMapSession",
    "generate_space_file",
    "load_space_file",
]
