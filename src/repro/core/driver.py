"""The AutoMap driver (paper Figure 4, right box) — compatibility shim.

Since the mapping-as-a-service refactor the search logic lives in the
stateless :class:`repro.core.engine.TuningEngine`; this module keeps the
classic one-(application, machine)-pair driver API on top of it.  A
driver binds a :class:`~repro.core.engine.TuneRequest` at construction,
prepares it eagerly (space pruning, static analyzers — exactly what the
old constructor did), and exposes the prepared pieces (``space``,
``simulator``, ``bounds``, ...) as attributes for callers that inspect
them.  :class:`~repro.core.engine.TuningReport` and
:func:`~repro.core.engine.make_algorithm` are re-exported unchanged.
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable, List, Optional, Union

from repro.core.engine import (
    FINAL_CANDIDATES,
    FINAL_RUNS,
    TuneRequest,
    TuningEngine,
    TuningReport,
    make_algorithm,
)
from repro.core.oracle import OracleConfig, SimulationOracle
from repro.obs.telemetry import SearchTelemetry
from repro.machine.model import Machine
from repro.mapping.mapping import Mapping
from repro.mapping.space import SearchSpace
from repro.resilience.checkpoint import TuningCheckpoint
from repro.runtime.simulator import SimConfig
from repro.search.base import SearchAlgorithm
from repro.taskgraph.graph import TaskGraph

__all__ = [
    "FINAL_CANDIDATES",
    "FINAL_RUNS",
    "TuningReport",
    "AutoMapDriver",
    "make_algorithm",
]


class AutoMapDriver:
    """Search orchestration for one (application, machine) pair.

    A thin stateful wrapper over the stateless
    :class:`~repro.core.engine.TuningEngine`: construction builds and
    prepares the tune request once; :meth:`tune` runs it.
    """

    def __init__(
        self,
        graph: TaskGraph,
        machine: Machine,
        algorithm: Union[str, SearchAlgorithm] = "ccd",
        oracle_config: Optional[OracleConfig] = None,
        sim_config: Optional[SimConfig] = None,
        seed: int = 0,
        final_candidates: int = FINAL_CANDIDATES,
        final_runs: int = FINAL_RUNS,
        space: Optional[SearchSpace] = None,
        workers: int = 1,
        static_prune: bool = True,
        bound_prune: bool = True,
        bound_order: bool = True,
        checkpoint_path: Optional[Union[str, Path]] = None,
        checkpoint_every: int = 0,
        resume_checkpoint: Optional[TuningCheckpoint] = None,
        worker_timeout: Optional[float] = None,
        observers: Optional[
            List[Callable[[SimulationOracle], None]]
        ] = None,
        telemetry: Optional[SearchTelemetry] = None,
        trace: bool = False,
    ) -> None:
        self.engine = TuningEngine()
        request = TuneRequest(
            graph=graph,
            machine=machine,
            algorithm=algorithm,
            oracle_config=oracle_config,
            sim_config=sim_config,
            seed=seed,
            final_candidates=final_candidates,
            final_runs=final_runs,
            space=space,
            workers=workers,
            static_prune=static_prune,
            bound_prune=bound_prune,
            bound_order=bound_order,
            checkpoint_path=checkpoint_path,
            checkpoint_every=checkpoint_every,
            resume_checkpoint=resume_checkpoint,
            worker_timeout=worker_timeout,
            observers=tuple(observers or ()),
            telemetry=telemetry,
            trace=trace,
        )
        self._prepared = self.engine.prepare(request)

        # The historical attribute surface, mirrored off the prepared
        # request so existing callers (tests, benchmarks, the fuzz
        # harness) keep working unchanged.
        prepared = self._prepared
        self.graph = graph
        self.machine = machine
        self.algorithm = prepared.algorithm
        self.oracle_config = prepared.oracle_config
        self.sim_config = prepared.sim_config
        self.seed = seed
        self.final_candidates = final_candidates
        self.final_runs = final_runs
        self.space = prepared.space
        self.simulator = prepared.simulator
        self.workers = workers
        self.checkpoint_path = prepared.checkpoint_path
        self.checkpoint_every = checkpoint_every
        self.worker_timeout = worker_timeout
        self.observers = list(observers or [])
        self.telemetry = telemetry
        self.trace = trace
        self.resume_checkpoint = resume_checkpoint
        self.static_prune = static_prune
        self.canonicalizer = prepared.canonicalizer
        self.feasibility = prepared.feasibility
        self.bound_prune = bound_prune
        self.bounds = prepared.bounds
        self.bound_order = bound_order
        self.order_bounds = prepared.order_bounds

    # ------------------------------------------------------------------
    def tune(self, start: Optional[Mapping] = None) -> TuningReport:
        """Run the full search + final re-evaluation protocol (see
        :meth:`repro.core.engine.TuningEngine.run`)."""
        return self.engine.run(self._prepared, start=start)

    # ------------------------------------------------------------------
    def measure(self, mapping: Mapping, runs: int = FINAL_RUNS) -> float:
        """Mean of ``runs`` noisy measurements of one mapping (used to
        score baseline mappings outside the search)."""
        return self.engine.measure(self._prepared, mapping, runs=runs)
