"""The runtime-facing mapper (paper Figure 4, left box).

In the real system, AutoMap's mapper implements Legion's mapping
interface: the runtime calls back for each task and each region
requirement and the mapper answers from the mapping the driver selected.
:class:`AutoMapMapper` exposes the same callback shape over this
repository's runtime substrate — useful for embedding the tuned mapping
into user code and exercised directly by the examples.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.machine.model import Machine, Memory, Processor
from repro.mapping.mapping import Mapping
from repro.runtime.placement import Placer, PointPlacement
from repro.taskgraph.task import TaskLaunch

__all__ = ["AutoMapMapper"]


class AutoMapMapper:
    """Answers mapping callbacks from a selected :class:`Mapping`.

    The callback names mirror Legion's mapper API (``select_task_options``
    / ``map_task``): given a launch, the mapper decides whether it is
    distributed, which concrete processor each point runs on, and which
    concrete memory each collection argument is instantiated in.
    """

    def __init__(self, machine: Machine, mapping: Mapping) -> None:
        self.machine = machine
        self.mapping = mapping
        self._placer = Placer(machine)

    # ------------------------------------------------------------------
    def select_task_options(self, launch: TaskLaunch) -> Tuple[bool, str]:
        """Whether the launch is distributed and on which processor kind
        it runs (the group-level decisions of §3.1/§3.2)."""
        decision = self.mapping.decision(launch.kind.name)
        return decision.distribute, decision.proc_kind.value

    def map_task(self, launch: TaskLaunch) -> List[PointPlacement]:
        """Concrete processor and per-argument memories for every point
        task of the launch."""
        decision = self.mapping.decision(launch.kind.name)
        return self._placer.place_launch(launch, decision)

    def select_processor(self, launch: TaskLaunch, point: int) -> Processor:
        """The concrete processor for one point task."""
        return self.map_task(launch)[point].proc

    def select_memory(
        self, launch: TaskLaunch, point: int, slot_index: int
    ) -> Memory:
        """The concrete memory instance for one collection argument of
        one point task."""
        return self.map_task(launch)[point].mems[slot_index]
