"""The induced collection graph C (paper §4.2).

From the dependence graph G we induce a graph over collections where
``(c1, c2)`` is an edge iff ``c1 ∩ c2 ≠ ∅``, weighted by ``|c1 ∩ c2|``.
CCD uses C for its co-location constraints, pruning the lightest edges
after each rotation to gradually relax the data-movement penalty.

Because AutoMap's factored search space makes one memory decision per
*collection-argument slot* of each task kind (not per concrete
collection), we lift C to slot granularity: the nodes are
``(kind_name, slot_index)`` pairs and two slots are connected when any of
the collections bound to them across launches overlap.  The weight is the
total overlap in bytes.  This is exactly the structure Algorithm 2's
overlap map ``O[(t, c)]`` iterates over.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Set, Tuple

from repro.taskgraph.collection import overlap_bytes
from repro.taskgraph.graph import TaskGraph

__all__ = ["SlotRef", "CollectionGraph", "induced_collection_graph"]

#: A collection-argument slot: (task kind name, slot index).
SlotRef = Tuple[str, int]


class CollectionGraph:
    """A mutable weighted graph over collection-argument slots.

    Supports the two operations CCD needs: neighbourhood queries (the
    overlap map O) and pruning the lightest fraction of edges (constraint
    relaxation between rotations).
    """

    def __init__(self, edges: Dict[FrozenSet, int]) -> None:
        # edges: frozenset({slot_a, slot_b}) -> weight (bytes)
        self._edges: Dict[FrozenSet, int] = {
            key: int(weight) for key, weight in edges.items() if weight > 0
        }
        for key in self._edges:
            if len(key) != 2:
                raise ValueError(f"edge must join two distinct slots: {key}")
        self.original_num_edges = len(self._edges)

    # ------------------------------------------------------------------
    @property
    def num_edges(self) -> int:
        return len(self._edges)

    def edges(self) -> List[Tuple[SlotRef, SlotRef, int]]:
        """All edges as sorted ``(a, b, weight)`` triples (deterministic)."""
        out = []
        for key, weight in self._edges.items():
            a, b = sorted(key)
            out.append((a, b, weight))
        out.sort()
        return out

    def weight(self, a: SlotRef, b: SlotRef) -> int:
        """Edge weight between two slots (0 when absent)."""
        return self._edges.get(frozenset((a, b)), 0)

    def neighbors(self, slot: SlotRef) -> List[SlotRef]:
        """Slots currently connected to ``slot``, sorted."""
        out = []
        for key in self._edges:
            if slot in key:
                (other,) = key - {slot}
                out.append(other)
        return sorted(out)

    def connected(self, a: SlotRef, b: SlotRef) -> bool:
        return frozenset((a, b)) in self._edges

    # ------------------------------------------------------------------
    def prune_lightest(self, count: int) -> int:
        """Remove up to ``count`` lightest edges; returns how many were
        removed.  Ties break deterministically by slot names."""
        if count <= 0:
            return 0
        ranked = sorted(
            self._edges.items(), key=lambda kv: (kv[1], tuple(sorted(kv[0])))
        )
        removed = 0
        for key, _ in ranked[:count]:
            del self._edges[key]
            removed += 1
        return removed

    def prune_all(self) -> None:
        """Remove every edge (the fully-relaxed final rotation)."""
        self._edges.clear()

    def copy(self) -> "CollectionGraph":
        clone = CollectionGraph(dict(self._edges))
        clone.original_num_edges = self.original_num_edges
        return clone

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CollectionGraph(edges={self.num_edges})"


def induced_collection_graph(graph: TaskGraph) -> CollectionGraph:
    """Build the slot-level induced collection graph of ``graph``.

    Two distinct slots are joined when any collections bound to them in
    any launches overlap; the edge weight accumulates the overlap bytes
    over all binding pairs, so heavily-shared data (e.g. a collection
    passed whole to two different kinds every iteration) gets a heavy
    edge that survives pruning longest.
    """
    # Gather the collections bound to each slot across all launches.
    bound: Dict[SlotRef, Set[str]] = {}
    for launch in graph.launches:
        for idx in range(launch.kind.num_slots):
            bound.setdefault((launch.kind.name, idx), set()).add(
                launch.args[idx].name
            )

    slots = sorted(bound)
    edges: Dict[FrozenSet, int] = {}
    for i, slot_a in enumerate(slots):
        colls_a = [graph.collection(name) for name in sorted(bound[slot_a])]
        for slot_b in slots[i + 1 :]:
            colls_b = [graph.collection(name) for name in sorted(bound[slot_b])]
            weight = 0
            for ca in colls_a:
                for cb in colls_b:
                    weight += overlap_bytes(ca, cb)
            if weight > 0:
                edges[frozenset((slot_a, slot_b))] = weight
    return CollectionGraph(edges)
