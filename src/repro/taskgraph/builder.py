"""Fluent construction of task graphs with automatic dependence analysis.

Applications declare collections and task kinds, then issue launches in
program order; the builder derives per-collection dependence edges with
last-writer semantics over the overlap relation:

* a launch that *reads* collection ``c`` depends on the most recent prior
  launch that wrote any collection overlapping ``c`` (true / RAW);
* a launch that *writes* ``c`` depends on the prior writer (output /
  WAW), keeping final-state order;
* anti-dependences (WAR, reader → later writer) are **not** emitted by
  default: Legion's data versioning renames regions so a new write never
  waits for readers of the old version.  Pass ``anti_dependences=True``
  for runtimes without versioning.

This mirrors how Legion computes the dependence graph from region
privileges at runtime — the dynamic analysis AutoMap piggybacks on.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.machine.kinds import ProcKind
from repro.taskgraph.collection import Collection, overlapping
from repro.taskgraph.graph import Dependence, TaskGraph
from repro.taskgraph.task import ArgSlot, Privilege, TaskKind, TaskLaunch

__all__ = ["GraphBuilder"]


class GraphBuilder:
    """Builds a :class:`TaskGraph` from a program-order launch sequence.

    Examples
    --------
    >>> b = GraphBuilder("saxpy")
    >>> x = b.collection("x", nbytes=1 << 20)
    >>> y = b.collection("y", nbytes=1 << 20)
    >>> k = b.task_kind(
    ...     "saxpy",
    ...     slots=[("x", Privilege.READ), ("y", Privilege.READ_WRITE)],
    ... )
    >>> _ = b.launch(k, [x, y], size=4, flops=2e6)
    >>> graph = b.build()
    >>> len(graph)
    1
    """

    def __init__(self, name: str, anti_dependences: bool = False) -> None:
        self.name = name
        self.anti_dependences = anti_dependences
        self._collections: Dict[str, Collection] = {}
        self._kinds: Dict[str, TaskKind] = {}
        self._launches: List[TaskLaunch] = []
        self._dependences: List[Dependence] = []
        self._launch_counts: Dict[str, int] = {}
        # Per-collection access history for dependence derivation:
        # last writer launch uid, and readers since that writer.
        self._last_writer: Dict[str, str] = {}
        self._readers_since_write: Dict[str, List[str]] = {}

    # ------------------------------------------------------------------
    # Declarations
    # ------------------------------------------------------------------
    def collection(
        self,
        name: str,
        nbytes: int,
        root: Optional[str] = None,
        offset: int = 0,
    ) -> Collection:
        """Declare (or fetch, if identically re-declared) a collection."""
        coll = Collection(name=name, nbytes=nbytes, root=root, offset=offset)
        existing = self._collections.get(name)
        if existing is not None:
            if existing != coll:
                raise ValueError(f"collection {name!r} re-declared differently")
            return existing
        self._collections[name] = coll
        return coll

    def partition(
        self,
        root: str,
        nbytes: int,
        parts: int,
        halo_bytes: int = 0,
        prefix: Optional[str] = None,
    ) -> List[Collection]:
        """Declare a blocked partition of a logical array.

        Creates ``parts`` sub-collections of ``root`` with equal shares.
        With ``halo_bytes > 0``, each part is widened by a halo on both
        sides (clamped to the root's extent), so adjacent parts *overlap*
        by ``halo_bytes`` — the canonical source of CCD's co-location
        edges.
        """
        if parts < 1:
            raise ValueError("partition needs parts >= 1")
        if halo_bytes < 0:
            raise ValueError("halo_bytes must be >= 0")
        prefix = prefix or root
        share = nbytes // parts
        out: List[Collection] = []
        for i in range(parts):
            lo = max(0, i * share - halo_bytes)
            hi = min(nbytes, (i + 1) * share + halo_bytes)
            out.append(
                self.collection(
                    f"{prefix}_p{i}", nbytes=hi - lo, root=root, offset=lo
                )
            )
        return out

    def task_kind(
        self,
        name: str,
        slots: Sequence,
        variants: Iterable[ProcKind] = (ProcKind.CPU, ProcKind.GPU),
        gpu_speedup: float = 1.0,
    ) -> TaskKind:
        """Declare a task kind.

        ``slots`` entries may be :class:`ArgSlot` instances or positional
        tuples ``(name, privilege[, pattern[, halo_bytes]])``.
        """
        norm_slots: List[ArgSlot] = []
        for entry in slots:
            if isinstance(entry, ArgSlot):
                norm_slots.append(entry)
            else:
                norm_slots.append(ArgSlot(*entry))
        kind = TaskKind(
            name=name,
            slots=tuple(norm_slots),
            variants=frozenset(variants),
            gpu_speedup=gpu_speedup,
        )
        existing = self._kinds.get(name)
        if existing is not None:
            if existing != kind:
                raise ValueError(f"task kind {name!r} re-declared differently")
            return existing
        self._kinds[name] = kind
        return kind

    # ------------------------------------------------------------------
    # Launches
    # ------------------------------------------------------------------
    def launch(
        self,
        kind: TaskKind,
        args: Sequence[Collection],
        size: int = 1,
        flops: float = 0.0,
    ) -> TaskLaunch:
        """Issue one group launch in program order and derive its
        dependence edges."""
        if kind.name not in self._kinds:
            raise ValueError(f"unknown task kind {kind.name!r}; declare it first")
        for arg in args:
            if arg.name not in self._collections:
                raise ValueError(
                    f"unknown collection {arg.name!r}; declare it first"
                )
        count = self._launch_counts.get(kind.name, 0)
        self._launch_counts[kind.name] = count + 1
        launch = TaskLaunch(
            uid=f"{kind.name}#{count}",
            kind=kind,
            args=tuple(args),
            size=size,
            flops=flops,
            sequence=len(self._launches),
        )
        self._derive_dependences(launch)
        self._record_accesses(launch)
        self._launches.append(launch)
        return launch

    def _derive_dependences(self, launch: TaskLaunch) -> None:
        edges: Dict[Tuple[str, str, str, str], Dependence] = {}
        for slot, arg in zip(launch.kind.slots, launch.args):
            for other in self._overlapping_collections(arg):
                if slot.privilege.reads:
                    writer = self._last_writer.get(other.name)
                    if writer is not None and writer != launch.uid:
                        key = (writer, launch.uid, other.name, arg.name)
                        edges.setdefault(
                            key,
                            Dependence(
                                src=writer,
                                dst=launch.uid,
                                collection=other.name,
                                consumer_collection=arg.name,
                            ),
                        )
                if slot.privilege.writes:
                    writer = self._last_writer.get(other.name)
                    if writer is not None and writer != launch.uid:
                        key = (writer, launch.uid, other.name, arg.name)
                        edges.setdefault(
                            key,
                            Dependence(
                                src=writer,
                                dst=launch.uid,
                                collection=other.name,
                                consumer_collection=arg.name,
                            ),
                        )
                    if self.anti_dependences:
                        for reader in self._readers_since_write.get(
                            other.name, ()
                        ):
                            if reader == launch.uid:
                                continue
                            key = (reader, launch.uid, other.name, arg.name)
                            edges.setdefault(
                                key,
                                Dependence(
                                    src=reader,
                                    dst=launch.uid,
                                    collection=other.name,
                                    consumer_collection=arg.name,
                                ),
                            )
        self._dependences.extend(edges.values())

    def _record_accesses(self, launch: TaskLaunch) -> None:
        for slot, arg in zip(launch.kind.slots, launch.args):
            if slot.privilege.writes:
                self._last_writer[arg.name] = launch.uid
                self._readers_since_write[arg.name] = []
            if slot.privilege.reads:
                self._readers_since_write.setdefault(arg.name, []).append(
                    launch.uid
                )

    def _overlapping_collections(self, arg: Collection) -> List[Collection]:
        return [
            other
            for other in self._collections.values()
            if overlapping(arg, other)
        ]

    # ------------------------------------------------------------------
    def build(self) -> TaskGraph:
        """Finalize and validate the graph."""
        return TaskGraph(
            name=self.name,
            launches=self._launches,
            dependences=self._dependences,
        )
