"""The task dependence graph.

Nodes are task launches; edges represent a partial order on execution
(paper §2).  Each dependence edge carries the collection that induces it,
because the runtime needs *per-collection* dependence information to know
what data must flow where — the paper lists this as the feature another
task-based system must expose to use AutoMap (§3).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.taskgraph.collection import Collection
from repro.taskgraph.task import TaskKind, TaskLaunch

__all__ = ["Dependence", "TaskGraph"]


@dataclass(frozen=True)
class Dependence:
    """A dependence edge: ``dst`` must wait for ``src``.

    ``collection`` names the data whose flow induces the edge (the
    producer's written collection); ``consumer_collection`` the possibly
    different — but overlapping — collection through which the consumer
    sees that data (e.g. a halo region fed by a neighbouring interior
    partition).
    """

    src: str
    dst: str
    collection: str
    consumer_collection: str


class TaskGraph:
    """An immutable acyclic dependence graph of task launches.

    Use :class:`repro.taskgraph.builder.GraphBuilder` to construct graphs;
    direct construction is for tests and deserialization.
    """

    def __init__(
        self,
        name: str,
        launches: Sequence[TaskLaunch],
        dependences: Sequence[Dependence],
    ) -> None:
        self.name = name
        self.launches: Tuple[TaskLaunch, ...] = tuple(
            sorted(launches, key=lambda t: t.sequence)
        )
        self.dependences: Tuple[Dependence, ...] = tuple(dependences)

        self._by_uid: Dict[str, TaskLaunch] = {}
        for launch in self.launches:
            if launch.uid in self._by_uid:
                raise ValueError(f"duplicate launch uid {launch.uid!r}")
            self._by_uid[launch.uid] = launch

        self._preds: Dict[str, List[Dependence]] = defaultdict(list)
        self._succs: Dict[str, List[Dependence]] = defaultdict(list)
        for dep in self.dependences:
            if dep.src not in self._by_uid or dep.dst not in self._by_uid:
                raise ValueError(
                    f"dependence {dep.src}->{dep.dst} references unknown launch"
                )
            if dep.src == dep.dst:
                raise ValueError(f"self-dependence on {dep.src}")
            self._preds[dep.dst].append(dep)
            self._succs[dep.src].append(dep)

        self._check_acyclic()

        # Kind and collection registries (deterministic order of first use).
        self._kinds: Dict[str, TaskKind] = {}
        self._collections: Dict[str, Collection] = {}
        for launch in self.launches:
            existing = self._kinds.get(launch.kind.name)
            if existing is not None and existing is not launch.kind:
                if existing != launch.kind:
                    raise ValueError(
                        f"conflicting definitions of task kind "
                        f"{launch.kind.name!r}"
                    )
            self._kinds.setdefault(launch.kind.name, launch.kind)
            for arg in launch.args:
                existing_c = self._collections.get(arg.name)
                if existing_c is not None and existing_c != arg:
                    raise ValueError(
                        f"conflicting definitions of collection {arg.name!r}"
                    )
                self._collections.setdefault(arg.name, arg)

    # ------------------------------------------------------------------
    def _check_acyclic(self) -> None:
        """Kahn's algorithm; raises on cycles, naming the launches and
        edges stuck on the cycle so the offending builder code can be
        found without bisecting the graph."""
        indegree = {uid: len(self._preds[uid]) for uid in self._by_uid}
        ready = [uid for uid, deg in indegree.items() if deg == 0]
        seen = 0
        while ready:
            uid = ready.pop()
            seen += 1
            for dep in self._succs[uid]:
                indegree[dep.dst] -= 1
                if indegree[dep.dst] == 0:
                    ready.append(dep.dst)
        if seen != len(self._by_uid):
            stuck = sorted(
                (uid for uid, deg in indegree.items() if deg > 0),
                key=lambda u: self._by_uid[u].sequence,
            )
            shown = ", ".join(stuck[:6]) + (
                f", ... ({len(stuck)} launches total)" if len(stuck) > 6 else ""
            )
            stuck_set = set(stuck)
            edges = [
                f"{dep.src}->{dep.dst} (via {dep.collection!r})"
                for dep in self.dependences
                if dep.src in stuck_set and dep.dst in stuck_set
            ]
            edge_note = "; ".join(edges[:6]) + (
                f"; ... ({len(edges)} edges total)" if len(edges) > 6 else ""
            )
            raise ValueError(
                f"task graph {self.name!r} contains a cycle through "
                f"launches: {shown}; cycle edges: {edge_note} — remove or "
                f"reverse one of these dependences"
            )

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------
    def launch(self, uid: str) -> TaskLaunch:
        return self._by_uid[uid]

    def __len__(self) -> int:
        return len(self.launches)

    def __contains__(self, uid: str) -> bool:
        return uid in self._by_uid

    def predecessors(self, uid: str) -> List[Dependence]:
        """Dependence edges into ``uid``."""
        return list(self._preds.get(uid, ()))

    def successors(self, uid: str) -> List[Dependence]:
        """Dependence edges out of ``uid``."""
        return list(self._succs.get(uid, ()))

    @property
    def task_kinds(self) -> Tuple[TaskKind, ...]:
        """Distinct task kinds, in order of first launch."""
        return tuple(self._kinds.values())

    @property
    def collections(self) -> Tuple[Collection, ...]:
        """Distinct collections, in order of first use."""
        return tuple(self._collections.values())

    def kind(self, name: str) -> TaskKind:
        return self._kinds[name]

    def collection(self, name: str) -> Collection:
        return self._collections[name]

    def launches_of_kind(self, kind_name: str) -> List[TaskLaunch]:
        """All launches of the named kind, in program order."""
        return [t for t in self.launches if t.kind.name == kind_name]

    # ------------------------------------------------------------------
    # Mapping-relevant aggregates
    # ------------------------------------------------------------------
    def num_collection_arguments(self) -> int:
        """Total collection-argument *slots* over distinct kinds.

        This is Figure 5's "Collection Arguments" column: the number of
        per-argument memory decisions the search must make.
        """
        return sum(kind.num_slots for kind in self.task_kinds)

    def kind_flops(self) -> Dict[str, float]:
        """Total FLOPs per task kind over all launches (search ordering
        proxy before profiling data exists)."""
        totals: Dict[str, float] = {k.name: 0.0 for k in self.task_kinds}
        for launch in self.launches:
            totals[launch.kind.name] += launch.flops
        return totals

    def topological_order(self) -> List[TaskLaunch]:
        """Launches in a dependence-respecting order.

        Program order is already topological for builder-produced graphs,
        but this recomputes from edges (stable by sequence) to stay
        correct for hand-built graphs.
        """
        indegree = {uid: len(self._preds[uid]) for uid in self._by_uid}
        ready = sorted(
            (uid for uid, deg in indegree.items() if deg == 0),
            key=lambda u: self._by_uid[u].sequence,
        )
        order: List[TaskLaunch] = []
        import heapq

        heap = [(self._by_uid[u].sequence, u) for u in ready]
        heapq.heapify(heap)
        while heap:
            _, uid = heapq.heappop(heap)
            order.append(self._by_uid[uid])
            for dep in self._succs[uid]:
                indegree[dep.dst] -= 1
                if indegree[dep.dst] == 0:
                    heapq.heappush(
                        heap, (self._by_uid[dep.dst].sequence, dep.dst)
                    )
        return order

    def critical_path_flops(self) -> float:
        """Length of the longest dependence chain weighted by FLOPs
        (a machine-independent lower-bound shape used in tests)."""
        longest: Dict[str, float] = {}
        for launch in self.topological_order():
            incoming = [
                longest[dep.src] for dep in self._preds.get(launch.uid, ())
            ]
            longest[launch.uid] = launch.flops + (max(incoming) if incoming else 0.0)
        return max(longest.values(), default=0.0)

    def describe(self) -> str:
        """Multi-line summary: kinds, argument slots, launches, edges."""
        lines = [
            f"TaskGraph {self.name!r}: {len(self.launches)} launches, "
            f"{len(self.dependences)} dependences",
            f"  kinds: {len(self.task_kinds)}, "
            f"collection arguments: {self.num_collection_arguments()}, "
            f"collections: {len(self.collections)}",
        ]
        for kind in self.task_kinds:
            launches = self.launches_of_kind(kind.name)
            lines.append(
                f"  {kind.name}: {len(launches)} launch(es), "
                f"{kind.num_slots} arg slot(s), variants="
                f"{sorted(v.value for v in kind.variants)}"
            )
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TaskGraph(name={self.name!r}, launches={len(self.launches)}, "
            f"kinds={len(self.task_kinds)})"
        )
