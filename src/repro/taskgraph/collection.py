"""Data collections and the overlap relation.

In every task-based system the paper surveys, collections are variations
of multi-dimensional arrays.  For mapping, only two properties matter:
the collection's *size in bytes* (capacity and transfer costs) and the
*overlap relation* between collections (CCD's co-location constraints).

We model each collection as an interval of a named one-dimensional *root*
index space measured in bytes.  Partitions of a logical array are
disjoint sub-intervals of the same root; halo/ghost regions are intervals
that straddle partition boundaries, which is exactly how overlap arises in
the paper's motivating stencil example ("the halo regions in a partitioned
stencil computation overlap", §4.2).  Multi-dimensional structure is
flattened into this byte-interval picture — sufficient because mapping
decisions never depend on dimensionality, only on sizes and sharing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.util.units import format_bytes

__all__ = ["Collection", "overlap_bytes", "overlapping"]


@dataclass(frozen=True)
class Collection:
    """A named data collection.

    Attributes
    ----------
    name:
        Unique collection name, e.g. ``"grid_interior_p3"``.
    nbytes:
        Size of the collection in bytes.
    root:
        Name of the logical data structure this collection is a piece of.
        Collections with different roots never overlap.  Defaults to the
        collection's own name (a standalone array).
    offset:
        Byte offset of this collection within its root index space.
    """

    name: str
    nbytes: int
    root: Optional[str] = None
    offset: int = 0

    def __post_init__(self) -> None:
        if self.nbytes < 0:
            raise ValueError(f"{self.name}: nbytes must be >= 0")
        if self.offset < 0:
            raise ValueError(f"{self.name}: offset must be >= 0")
        if self.root is None:
            object.__setattr__(self, "root", self.name)

    @property
    def interval(self) -> Tuple[int, int]:
        """Half-open byte interval ``[offset, offset + nbytes)`` within
        the root index space."""
        return (self.offset, self.offset + self.nbytes)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.name}[{format_bytes(self.nbytes)}]"


def overlap_bytes(a: Collection, b: Collection) -> int:
    """Size in bytes of ``a ∩ b``.

    A collection fully overlaps itself.  Distinct collections overlap when
    they share a root and their byte intervals intersect; the overlap
    weight is the intersection size, matching the paper's edge weight
    ``|c1 ∩ c2|`` (§4.2).
    """
    if a.name == b.name:
        return a.nbytes
    if a.root != b.root:
        return 0
    lo = max(a.interval[0], b.interval[0])
    hi = min(a.interval[1], b.interval[1])
    return max(0, hi - lo)


def overlapping(a: Collection, b: Collection) -> bool:
    """Whether ``a ∩ b ≠ ∅``."""
    return overlap_bytes(a, b) > 0
