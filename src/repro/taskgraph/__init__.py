"""Task-based programming model (paper §2).

Programs are acyclic dependence graphs of *tasks* over named *data
collections*.  Tasks read/write collections; collections may overlap
(reference non-disjoint pieces of the same logical data structure, e.g.
halo regions of a partitioned stencil grid).  Group tasks (index launches)
are sets of independent point tasks launched in one operation; individual
tasks are groups of size one (paper §3.1).

Public surface:

- :class:`~repro.taskgraph.collection.Collection` and
  :func:`~repro.taskgraph.collection.overlap_bytes` — data collections and
  the overlap relation;
- :class:`~repro.taskgraph.task.TaskKind` /
  :class:`~repro.taskgraph.task.TaskLaunch` — task kinds (the unit the
  mapping ranges over) and their launches;
- :class:`~repro.taskgraph.graph.TaskGraph` — the dependence graph;
- :class:`~repro.taskgraph.builder.GraphBuilder` — the fluent public API
  applications use to express programs;
- :func:`~repro.taskgraph.induced.induced_collection_graph` — the induced
  collection graph C used by CCD (paper §4.2).
"""

from repro.taskgraph.collection import Collection, overlap_bytes
from repro.taskgraph.task import (
    ArgSlot,
    Privilege,
    ShardPattern,
    TaskKind,
    TaskLaunch,
)
from repro.taskgraph.graph import TaskGraph
from repro.taskgraph.builder import GraphBuilder
from repro.taskgraph.induced import CollectionGraph, induced_collection_graph

__all__ = [
    "Collection",
    "overlap_bytes",
    "Privilege",
    "ShardPattern",
    "ArgSlot",
    "TaskKind",
    "TaskLaunch",
    "TaskGraph",
    "GraphBuilder",
    "CollectionGraph",
    "induced_collection_graph",
]
