"""Task kinds and task launches.

The unit the *mapping* ranges over is the task **kind** together with its
argument slots: AutoMap's factored search space (paper §3.2) assigns one
(distribute, processor-kind) decision per kind and one memory-kind
decision per collection-argument slot; every launch of the kind shares
those decisions ("tasks in a group task are assigned the same mapping").
Figure 5's "Tasks" and "Collection Arguments" columns count kinds and
slots, which is why they are small even for long-running applications.

A task **launch** is one group launch in the dependence graph: a set of
``size`` independent point tasks of the same kind, bound to concrete
collections (one per slot).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import FrozenSet, Tuple

from repro.machine.kinds import ProcKind
from repro.taskgraph.collection import Collection

__all__ = ["Privilege", "ShardPattern", "ArgSlot", "TaskKind", "TaskLaunch"]


class Privilege(str, enum.Enum):
    """Access privilege a task holds on a collection argument."""

    READ = "read"
    WRITE = "write"
    READ_WRITE = "read_write"

    @property
    def reads(self) -> bool:
        return self in (Privilege.READ, Privilege.READ_WRITE)

    @property
    def writes(self) -> bool:
        return self in (Privilege.WRITE, Privilege.READ_WRITE)


class ShardPattern(str, enum.Enum):
    """How a point task's accessed range relates to its blocked share.

    The patterns mirror the region requirements real Legion applications
    declare: private blocks, blocks widened by read halos, boundary
    strips exchanged with neighbours, and fully-replicated broadcast
    data.  ``lo``/``hi`` refer to the low/high end of the point's blocked
    share of the collection.

    ======== =============================== ==========================
    Pattern   Accessed range                  Typical use
    ======== =============================== ==========================
    BLOCK     the blocked 1/size share        private data
    BLOCK_HALO share widened by halo_bytes on reads (ghost cells); the
              both sides                      written range stays the
                                              exact share
    STRIP_LO_OUT [lo-halo, lo)                read neighbour's boundary
    STRIP_HI_OUT [hi, hi+halo)                read neighbour's boundary
    STRIP_LO_IN  [lo, lo+halo)                produce own boundary strip
    STRIP_HI_IN  [hi-halo, hi)                produce own boundary strip
    REPLICATED the whole collection           broadcast tables
    ======== =============================== ==========================
    """

    BLOCK = "block"
    BLOCK_HALO = "block_halo"
    STRIP_LO_OUT = "strip_lo_out"
    STRIP_HI_OUT = "strip_hi_out"
    STRIP_LO_IN = "strip_lo_in"
    STRIP_HI_IN = "strip_hi_in"
    REPLICATED = "replicated"


@dataclass(frozen=True)
class ArgSlot:
    """One collection-argument slot of a task kind.

    Attributes
    ----------
    name:
        Slot name, unique within the kind (e.g. ``"node_voltages"``).
    privilege:
        Access privilege for this slot.
    pattern:
        How each point task's accessed range relates to its blocked
        share (see :class:`ShardPattern`).
    halo_bytes:
        Width of the halo/strip for the non-BLOCK patterns.
    """

    name: str
    privilege: Privilege = Privilege.READ
    pattern: ShardPattern = ShardPattern.BLOCK
    halo_bytes: int = 0

    def __post_init__(self) -> None:
        if self.halo_bytes < 0:
            raise ValueError(f"slot {self.name}: halo_bytes must be >= 0")
        needs_halo = self.pattern not in (
            ShardPattern.BLOCK,
            ShardPattern.REPLICATED,
        )
        if needs_halo and self.halo_bytes == 0:
            raise ValueError(
                f"slot {self.name}: pattern {self.pattern.value} requires "
                "halo_bytes > 0"
            )

    @property
    def replicated(self) -> bool:
        return self.pattern is ShardPattern.REPLICATED


@dataclass(frozen=True)
class TaskKind:
    """A task kind: a function of named data collections.

    Attributes
    ----------
    name:
        Unique kind name (e.g. ``"calc_new_currents"``).
    slots:
        Collection-argument slots, in positional order.
    variants:
        Processor kinds for which object code exists.  A mapping may only
        place the kind on processors whose kind is in this set (paper §2).
    gpu_speedup:
        Ratio by which one GPU outpaces one CPU *core* on this kind's
        inner kernel, applied on top of the machine's throughput ratio
        being normalised out; 1.0 means the kind's kernel saturates both
        architectures equally.  Values < 1 model poorly-vectorising,
        branchy kernels (common in unstructured-mesh codes like Pennant).
    """

    name: str
    slots: Tuple[ArgSlot, ...]
    variants: FrozenSet[ProcKind] = frozenset({ProcKind.CPU, ProcKind.GPU})
    gpu_speedup: float = 1.0

    def __post_init__(self) -> None:
        if not self.slots:
            raise ValueError(f"task kind {self.name!r} must have >= 1 slot")
        names = [s.name for s in self.slots]
        if len(set(names)) != len(names):
            raise ValueError(f"task kind {self.name!r} has duplicate slot names")
        if not self.variants:
            raise ValueError(f"task kind {self.name!r} must have >= 1 variant")
        if self.gpu_speedup <= 0:
            raise ValueError(f"task kind {self.name!r}: gpu_speedup must be > 0")

    @property
    def num_slots(self) -> int:
        return len(self.slots)

    def slot_index(self, slot_name: str) -> int:
        """Positional index of the named slot (raises ``KeyError``)."""
        for i, slot in enumerate(self.slots):
            if slot.name == slot_name:
                return i
        raise KeyError(f"{self.name} has no slot {slot_name!r}")

    def has_variant(self, kind: ProcKind) -> bool:
        return kind in self.variants


@dataclass(frozen=True)
class TaskLaunch:
    """One group launch of a task kind.

    Attributes
    ----------
    uid:
        Unique launch id (e.g. ``"calc_new_currents#12"``).
    kind:
        The launched task kind.
    args:
        Concrete collections bound to the kind's slots, positionally.
    size:
        Number of independent point tasks in the group (>= 1).  Individual
        tasks are groups of size one (paper §3.1).
    flops:
        Total floating-point work of the whole launch; each point task
        performs ``flops / size``.
    sequence:
        Program-order index used for dependence derivation and stable
        ordering.
    """

    uid: str
    kind: TaskKind
    args: Tuple[Collection, ...]
    size: int = 1
    flops: float = 0.0
    sequence: int = 0

    def __post_init__(self) -> None:
        if len(self.args) != self.kind.num_slots:
            raise ValueError(
                f"launch {self.uid}: expected {self.kind.num_slots} args "
                f"for kind {self.kind.name!r}, got {len(self.args)}"
            )
        if self.size < 1:
            raise ValueError(f"launch {self.uid}: group size must be >= 1")
        if self.flops < 0:
            raise ValueError(f"launch {self.uid}: flops must be >= 0")

    def slot_arg(self, slot_name: str) -> Collection:
        """The collection bound to the named slot."""
        return self.args[self.kind.slot_index(slot_name)]

    def shard_interval(
        self, slot_index: int, point: int, for_write: bool = False
    ) -> Tuple[int, int]:
        """Byte interval (in the collection's *root* index space) accessed
        by one point task through one argument slot.

        Reads through halo patterns are widened/offset per the slot's
        :class:`ShardPattern`; writes through ``BLOCK_HALO`` stay on the
        exact blocked share (point tasks of a group are independent, so
        they never write each other's cells through a halo).  Ranges are
        clamped to the collection's extent, so boundary points get
        naturally truncated (empty) ghost strips.
        """
        slot = self.kind.slots[slot_index]
        coll = self.args[slot_index]
        c_lo, c_hi = coll.interval
        if slot.pattern is ShardPattern.REPLICATED or self.size == 1:
            if slot.pattern in (ShardPattern.REPLICATED, ShardPattern.BLOCK):
                return (c_lo, c_hi)
        nbytes = c_hi - c_lo
        lo = c_lo + point * nbytes // self.size
        hi = c_lo + (point + 1) * nbytes // self.size
        h = slot.halo_bytes
        pattern = slot.pattern
        if pattern is ShardPattern.BLOCK:
            return (lo, hi)
        if pattern is ShardPattern.BLOCK_HALO:
            if for_write:
                return (lo, hi)
            return (max(c_lo, lo - h), min(c_hi, hi + h))
        if pattern is ShardPattern.STRIP_LO_OUT:
            return (max(c_lo, lo - h), lo)
        if pattern is ShardPattern.STRIP_HI_OUT:
            return (hi, min(c_hi, hi + h))
        if pattern is ShardPattern.STRIP_LO_IN:
            return (lo, min(hi, lo + h))
        if pattern is ShardPattern.STRIP_HI_IN:
            return (max(lo, hi - h), hi)
        if pattern is ShardPattern.REPLICATED:
            return (c_lo, c_hi)
        raise ValueError(f"unknown shard pattern {pattern!r}")

    def arg_bytes_per_point(self, slot_index: int) -> float:
        """Bytes of the slot's collection accessed by *each point task*
        (read-side width), used by the streaming access-cost model."""
        lo, hi = self.shard_interval(slot_index, 0, for_write=False)
        if self.size > 1:
            # Use an interior point to avoid boundary-clamped strips.
            mid = self.size // 2
            lo, hi = self.shard_interval(slot_index, mid, for_write=False)
        return float(hi - lo)

    def total_arg_bytes(self) -> int:
        """Total bytes over all argument collections (no dedup)."""
        return sum(c.nbytes for c in self.args)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.uid}(x{self.size})"
