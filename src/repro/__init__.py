"""AutoMap reproduction.

A from-scratch Python implementation of *Automated Mapping of Task-Based
Programs onto Distributed and Heterogeneous Machines* (Teixeira,
Henzinger, Yadav, Aiken — SC '23), including the Legion-like runtime
substrate it needs to run on a laptop (see DESIGN.md).

Quickstart::

    from repro.machine import shepard
    from repro.apps import CircuitApp
    from repro.core import AutoMapSession

    machine = shepard(1)
    app = CircuitApp(pieces=50, wires_per_piece=200)
    session = AutoMapSession(app.graph(machine), machine, algorithm="ccd")
    report = session.tune()
    print(report.describe())
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
