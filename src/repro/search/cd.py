"""Coordinate-wise descent (paper §4.1; Algorithm 1 without line 17).

CD considers each task in turn — from longest running to shortest — and
greedily optimises its distribution setting, its processor kind, and the
memory kind of each collection argument (largest collection first),
holding every other decision constant and accepting only strict
improvements.  Its runtime is linear in the number of tasks and
collection arguments.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from repro.machine.kinds import ADDRESSABLE
from repro.mapping.mapping import Mapping
from repro.mapping.space import SearchSpace
from repro.search.base import (
    INFEASIBLE,
    Oracle,
    SearchAlgorithm,
    SearchResult,
)
from repro.taskgraph.induced import CollectionGraph
from repro.search.colocation import apply_colocation_constraints
from repro.util.logging import get_logger, kv
from repro.util.rng import RngStream

__all__ = ["CoordinateDescent"]

_LOG = get_logger("search.cd")


class CoordinateDescent(SearchAlgorithm):
    """Plain coordinate-wise descent (one unconstrained rotation)."""

    name = "cd"

    # The walk only compares ``outcome.performance`` against its
    # incumbent and accepts strict improvements, and the incumbent
    # always equals the oracle's best-so-far — so a sound lower bound
    # ``>=`` the incumbent rejects exactly like a real measurement.
    supports_bound_pruning = True

    #: Optional :class:`repro.analysis.bounds.StaticBoundAnalyzer`.
    #: When attached (by the driver), each coordinate's move-set is
    #: visited in ascending lower-bound order instead of enumeration
    #: order — best-bound-first.  Promising moves are tested first, the
    #: incumbent drops earlier, and bound pruning rejects more of the
    #: tail.  The walk still accepts strict improvements only, so any
    #: visit order yields a valid descent; the order is deterministic
    #: (stable sort on the float bound, enumeration index as the tie
    #: break).
    bound_analyzer = None

    # ------------------------------------------------------------------
    def search(
        self,
        space: SearchSpace,
        oracle: Oracle,
        rng: RngStream,
        start: Optional[Mapping] = None,
    ) -> SearchResult:
        current = start if start is not None else space.default_mapping()
        outcome = oracle.evaluate(current)
        performance = outcome.performance
        current, performance = self._rotation(
            space, oracle, current, performance, colgraph=None
        )
        return self._result(oracle, current, performance)

    # ------------------------------------------------------------------
    # Shared machinery (CCD reuses everything below)
    # ------------------------------------------------------------------
    def _rotation(
        self,
        space: SearchSpace,
        oracle: Oracle,
        current: Mapping,
        performance: float,
        colgraph: Optional[CollectionGraph],
    ) -> Tuple[Mapping, float]:
        """One full CD pass over all task kinds (Alg. 1 lines 5-7).

        Each kind's optimisation is one telemetry *round*: the cheapest
        granularity that still shows where a rotation spends its oracle
        calls (§5.3's search statistics, per coordinate).
        """
        for kind_name in self.ordered_kinds(space, oracle, current):
            if oracle.exhausted:
                break
            self._set_cursor(kind=kind_name)
            self._round_begin(oracle)
            current, performance = self._optimize_task(
                space, oracle, current, performance, kind_name, colgraph
            )
            self._round_end(oracle)
        return current, performance

    def _optimize_task(
        self,
        space: SearchSpace,
        oracle: Oracle,
        current: Mapping,
        performance: float,
        kind_name: str,
        colgraph: Optional[CollectionGraph],
    ) -> Tuple[Mapping, float]:
        """OptimizeTask (Alg. 1 lines 10-19); ``colgraph`` enables the
        co-location constraints of line 17.

        Each phase's move-set is materialised up front so a batching
        oracle can speculatively evaluate the whole coordinate in
        parallel (the moves are independent given the incumbent); the
        accept/reject walk itself stays strictly serial, so results are
        identical to the one-at-a-time path.
        """
        # Lines 11-12: the distribution setting.
        current, performance = self._descend(
            oracle,
            current,
            performance,
            self._distribute_moves(space, kind_name),
        )
        # Lines 13-18: processor kind x (collection x memory kind).
        current, performance = self._descend(
            oracle,
            current,
            performance,
            self._placement_moves(space, kind_name, colgraph),
        )
        return current, performance

    def _distribute_moves(
        self, space: SearchSpace, kind_name: str
    ) -> List[Callable[[Mapping], Mapping]]:
        """Move builders for Alg. 1 lines 11-12 (one per distribution
        option); each builds a candidate from a given incumbent.

        Enumeration goes through ``searched_distribute_options`` so a
        statically pruned space view can skip provably-unobservable
        options; a move whose result canonicalizes onto the incumbent
        evaluates to the incumbent's cached result and can never be a
        strict improvement, so skipping it leaves the walk unchanged.
        """
        return [
            lambda m, d=distribute: m.with_distribute(kind_name, d)
            for distribute in space.searched_distribute_options(kind_name)
        ]

    def _placement_moves(
        self,
        space: SearchSpace,
        kind_name: str,
        colgraph: Optional[CollectionGraph],
    ) -> List[Callable[[Mapping], Mapping]]:
        """Move builders for Alg. 1 lines 13-18, in the serial visit
        order: processor kind x (slot, largest first) x memory kind."""

        def build(
            m: Mapping,
            proc_kind=None,
            slot_index=None,
            mem_kind=None,
        ) -> Mapping:
            candidate = m.with_proc(kind_name, proc_kind)
            candidate = candidate.with_mem(kind_name, slot_index, mem_kind)
            if colgraph is not None:
                return apply_colocation_constraints(
                    space,
                    colgraph,
                    candidate,
                    kind_name,
                    slot_index,
                    proc_kind,
                    mem_kind,
                )
            return self._legalize_kind(space, candidate, kind_name)

        moves: List[Callable[[Mapping], Mapping]] = []
        slot_order = self.ordered_slots(space, kind_name)
        # A pruned space view drops options that are provably OOM
        # (never a strict improvement over anything), that canonicalize
        # onto another searched option, or — for processor kinds — that
        # a machine-symmetry proof folds onto an enumerated twin.
        for proc_kind in space.searched_proc_options(kind_name):
            for slot_index in slot_order:
                for mem_kind in space.searched_mem_options(
                    kind_name, proc_kind, slot_index
                ):
                    moves.append(
                        lambda m, p=proc_kind, s=slot_index, k=mem_kind: (
                            build(m, proc_kind=p, slot_index=s, mem_kind=k)
                        )
                    )
        return moves

    def _descend(
        self,
        oracle: Oracle,
        current: Mapping,
        performance: float,
        moves: List[Callable[[Mapping], Mapping]],
    ) -> Tuple[Mapping, float]:
        """Serially test each move against the incumbent, keeping strict
        improvements (TestMapping, Alg. 1 lines 20-24).

        When the oracle supports batching, the move-set built from the
        incumbent is prefetched so the serial walk mostly hits the cache;
        an accepted move invalidates the speculation for the remaining
        moves, so the tail is re-prefetched from the new incumbent.  The
        walk itself — and therefore the result and every search
        statistic — is independent of whether prefetching happened.
        """
        if oracle.exhausted:
            return current, performance
        moves = self._order_moves(moves, current)
        prefetch = getattr(oracle, "prefetch", None)
        batching = (
            prefetch is not None and getattr(oracle, "batch_size", 1) > 1
        )
        if batching:
            prefetch([build(current) for build in moves])
        for index, build in enumerate(moves):
            if oracle.exhausted:
                break
            previous = current
            current, performance = self._test(
                oracle, build(current), current, performance
            )
            if batching and current is not previous:
                prefetch(
                    [build(current) for build in moves[index + 1 :]]
                )
        return current, performance

    def _order_moves(
        self,
        moves: List[Callable[[Mapping], Mapping]],
        current: Mapping,
    ) -> List[Callable[[Mapping], Mapping]]:
        """Best-bound-first: stable-sort the move-set by the static
        lower bound of each candidate built from the entry incumbent.

        Computed once per descent (not re-sorted after accepts): the
        bounds of candidates built from a *better* incumbent would
        differ, but any fixed order is a correct strict-improvement
        walk, and one sort keeps the analyzer cost linear in the
        move-set.  Ranks by the analyzer's *quick* bound (critical path
        and load, no traffic walk): ordering only needs relative
        ranking, so the cheap bound buys the same reordering benefit at
        a fraction of the analyzer time."""
        if self.bound_analyzer is None or len(moves) <= 1:
            return moves
        analyzer = self.bound_analyzer
        keyed = sorted(
            (analyzer.quick_bound(build(current)), index, build)
            for index, build in enumerate(moves)
        )
        return [build for _bound, _index, build in keyed]

    @staticmethod
    def _legalize_kind(
        space: SearchSpace, mapping: Mapping, kind_name: str
    ) -> Mapping:
        """After a processor-kind move, reset any slot of the kind whose
        memory kind the new processor cannot address to the fastest
        addressable kind (the runtime's deterministic legalisation)."""
        decision = mapping.decision(kind_name)
        fastest = space.dims(kind_name).mem_options[decision.proc_kind][0]
        for slot_index, mem_kind in enumerate(decision.mem_kinds):
            if (decision.proc_kind, mem_kind) not in ADDRESSABLE:
                mapping = mapping.with_mem(kind_name, slot_index, fastest)
        return mapping

    @staticmethod
    def _test(
        oracle: Oracle,
        candidate: Mapping,
        current: Mapping,
        performance: float,
    ) -> Tuple[Mapping, float]:
        """TestMapping (Alg. 1 lines 20-24): evaluate and keep the
        candidate only on strict improvement."""
        outcome = oracle.evaluate(candidate)
        if outcome.performance < performance:
            return candidate, outcome.performance
        return current, performance

    def _result(
        self, oracle: Oracle, mapping: Mapping, performance: float
    ) -> SearchResult:
        result = SearchResult(
            algorithm=self.name,
            best_mapping=mapping if performance < INFEASIBLE else None,
            best_performance=performance,
            trace=list(getattr(oracle, "trace", [])),
            suggested=getattr(oracle, "suggested", 0),
            evaluated=getattr(oracle, "evaluated", 0),
        )
        _LOG.info(
            kv(
                "search-done",
                algorithm=self.name,
                best=performance,
                suggested=result.suggested,
                evaluated=result.evaluated,
            )
        )
        return result
