"""Coordinate-wise descent (paper §4.1; Algorithm 1 without line 17).

CD considers each task in turn — from longest running to shortest — and
greedily optimises its distribution setting, its processor kind, and the
memory kind of each collection argument (largest collection first),
holding every other decision constant and accepting only strict
improvements.  Its runtime is linear in the number of tasks and
collection arguments.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.machine.kinds import ADDRESSABLE
from repro.mapping.mapping import Mapping
from repro.mapping.space import SearchSpace
from repro.search.base import (
    INFEASIBLE,
    Oracle,
    SearchAlgorithm,
    SearchResult,
)
from repro.taskgraph.induced import CollectionGraph
from repro.search.colocation import apply_colocation_constraints
from repro.util.logging import get_logger, kv
from repro.util.rng import RngStream

__all__ = ["CoordinateDescent"]

_LOG = get_logger("search.cd")


class CoordinateDescent(SearchAlgorithm):
    """Plain coordinate-wise descent (one unconstrained rotation)."""

    name = "cd"

    # ------------------------------------------------------------------
    def search(
        self,
        space: SearchSpace,
        oracle: Oracle,
        rng: RngStream,
        start: Optional[Mapping] = None,
    ) -> SearchResult:
        current = start if start is not None else space.default_mapping()
        outcome = oracle.evaluate(current)
        performance = outcome.performance
        current, performance = self._rotation(
            space, oracle, current, performance, colgraph=None
        )
        return self._result(oracle, current, performance)

    # ------------------------------------------------------------------
    # Shared machinery (CCD reuses everything below)
    # ------------------------------------------------------------------
    def _rotation(
        self,
        space: SearchSpace,
        oracle: Oracle,
        current: Mapping,
        performance: float,
        colgraph: Optional[CollectionGraph],
    ) -> Tuple[Mapping, float]:
        """One full CD pass over all task kinds (Alg. 1 lines 5-7)."""
        for kind_name in self.ordered_kinds(space, oracle, current):
            if oracle.exhausted:
                break
            current, performance = self._optimize_task(
                space, oracle, current, performance, kind_name, colgraph
            )
        return current, performance

    def _optimize_task(
        self,
        space: SearchSpace,
        oracle: Oracle,
        current: Mapping,
        performance: float,
        kind_name: str,
        colgraph: Optional[CollectionGraph],
    ) -> Tuple[Mapping, float]:
        """OptimizeTask (Alg. 1 lines 10-19); ``colgraph`` enables the
        co-location constraints of line 17."""
        dims = space.dims(kind_name)

        # Lines 11-12: the distribution setting.
        for distribute in dims.distribute_options:
            if oracle.exhausted:
                return current, performance
            candidate = current.with_distribute(kind_name, distribute)
            current, performance = self._test(
                oracle, candidate, current, performance
            )

        # Lines 13-18: processor kind x (collection x memory kind).
        for proc_kind in dims.proc_options:
            for slot_index in self.ordered_slots(space, kind_name):
                for mem_kind in dims.mem_options[proc_kind]:
                    if oracle.exhausted:
                        return current, performance
                    candidate = current.with_proc(kind_name, proc_kind)
                    candidate = candidate.with_mem(
                        kind_name, slot_index, mem_kind
                    )
                    if colgraph is not None:
                        candidate = apply_colocation_constraints(
                            space,
                            colgraph,
                            candidate,
                            kind_name,
                            slot_index,
                            proc_kind,
                            mem_kind,
                        )
                    else:
                        candidate = self._legalize_kind(
                            space, candidate, kind_name
                        )
                    current, performance = self._test(
                        oracle, candidate, current, performance
                    )
        return current, performance

    @staticmethod
    def _legalize_kind(
        space: SearchSpace, mapping: Mapping, kind_name: str
    ) -> Mapping:
        """After a processor-kind move, reset any slot of the kind whose
        memory kind the new processor cannot address to the fastest
        addressable kind (the runtime's deterministic legalisation)."""
        decision = mapping.decision(kind_name)
        fastest = space.dims(kind_name).mem_options[decision.proc_kind][0]
        for slot_index, mem_kind in enumerate(decision.mem_kinds):
            if (decision.proc_kind, mem_kind) not in ADDRESSABLE:
                mapping = mapping.with_mem(kind_name, slot_index, fastest)
        return mapping

    @staticmethod
    def _test(
        oracle: Oracle,
        candidate: Mapping,
        current: Mapping,
        performance: float,
    ) -> Tuple[Mapping, float]:
        """TestMapping (Alg. 1 lines 20-24): evaluate and keep the
        candidate only on strict improvement."""
        outcome = oracle.evaluate(candidate)
        if outcome.performance < performance:
            return candidate, outcome.performance
        return current, performance

    def _result(
        self, oracle: Oracle, mapping: Mapping, performance: float
    ) -> SearchResult:
        result = SearchResult(
            algorithm=self.name,
            best_mapping=mapping if performance < INFEASIBLE else None,
            best_performance=performance,
            trace=list(getattr(oracle, "trace", [])),
            suggested=getattr(oracle, "suggested", 0),
            evaluated=getattr(oracle, "evaluated", 0),
        )
        _LOG.info(
            kv(
                "search-done",
                algorithm=self.name,
                best=performance,
                suggested=result.suggested,
                evaluated=result.evaluated,
            )
        )
        return result
