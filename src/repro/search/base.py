"""Shared search-algorithm interfaces.

The oracle abstraction mirrors the paper's architecture (Figure 4): the
*driver* owns the search algorithm and the profiles database; algorithms
only propose mappings and observe measured performance.  The oracle
contract encodes three behaviours every algorithm relies on:

* **deduplication** — re-suggesting an already-measured mapping returns
  the recorded result without a new execution (§5.3 distinguishes
  mappings *suggested* from mappings *evaluated*);
* **invalid-mapping rejection** — mappings violating addressability are
  *not* executed; the oracle "returns a high value ... so it does not
  suggest similar mappings in the future" (§4.3);
* **failure reporting** — valid mappings may still fail (out-of-memory);
  the search "detect[s] when a mapping results in an out of memory error
  and mov[es] on to a different mapping" (§5.2).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import List, Optional, Protocol, runtime_checkable

from repro.mapping.mapping import Mapping
from repro.mapping.space import SearchSpace
from repro.util.rng import RngStream

__all__ = [
    "INFEASIBLE",
    "EvalOutcome",
    "Oracle",
    "TracePoint",
    "SearchResult",
    "SearchAlgorithm",
]

#: Performance value reported for invalid / failed mappings — "a high
#: value" in the paper's words.  Finite so generic tuners can still rank.
INFEASIBLE = 1e30


@dataclass(frozen=True)
class EvalOutcome:
    """The oracle's verdict on one suggested mapping."""

    #: Measured performance (mean over the oracle's repeated runs), or
    #: :data:`INFEASIBLE` for invalid/failed mappings.  Lower is better.
    performance: float
    #: True when the mapping violated validity constraints (never run).
    invalid: bool = False
    #: True when the mapping ran and failed (e.g. out of memory).
    failed: bool = False
    #: True when this result came from the profiles database (dedup).
    cached: bool = False
    #: Optional human-readable reason for invalid/failed outcomes.
    reason: Optional[str] = None

    @property
    def ok(self) -> bool:
        return not (self.invalid or self.failed)


@runtime_checkable
class Oracle(Protocol):
    """What a search algorithm may ask of the evaluation machinery."""

    def evaluate(self, mapping: Mapping) -> EvalOutcome:
        """Measure one mapping (averaged noisy runs, dedup, rejection)."""
        ...

    @property
    def exhausted(self) -> bool:
        """True once the search budget (time or evaluations) is spent."""
        ...

    def kind_runtimes(self, mapping: Mapping) -> dict:
        """Profiled busy seconds per task kind under ``mapping`` — the
        signal CD/CCD use to order tasks by runtime (Alg. 1 line 6)."""
        ...


@dataclass(frozen=True)
class TracePoint:
    """One point of the best-so-far trajectory (Figure 9's axes)."""

    elapsed: float  # seconds since search start
    evaluations: int  # oracle evaluations so far
    suggested: int  # mappings suggested so far
    best_performance: float


@dataclass
class SearchResult:
    """Outcome of one search run."""

    algorithm: str
    best_mapping: Optional[Mapping]
    best_performance: float
    trace: List[TracePoint] = field(default_factory=list)
    suggested: int = 0
    evaluated: int = 0

    @property
    def found(self) -> bool:
        return (
            self.best_mapping is not None
            and self.best_performance < INFEASIBLE
        )


class SearchAlgorithm(abc.ABC):
    """Base class for mapping-search algorithms."""

    #: Short identifier used in logs and reports (e.g. ``"ccd"``).
    name: str = "base"

    #: Optional :class:`repro.obs.telemetry.SearchTelemetry` sink.  The
    #: driver attaches one before calling :meth:`search`; ``None`` (the
    #: class default) disables round recording entirely — the hooks
    #: below are no-ops, so an untelemetered search pays nothing.
    telemetry = None

    #: Whether bound-based pruning preserves this algorithm's trajectory
    #: byte-for-byte.  True only for algorithms that *compare* outcome
    #: performances against an incumbent and accept strict improvements
    #: (CD/CCD, random search); algorithms that *consume* the numeric
    #: values (e.g. the ensemble's bandit rewards) would behave
    #: differently under a pruned outcome, so the driver leaves pruning
    #: off for them.
    supports_bound_pruning: bool = False

    @property
    def cursor(self) -> dict:
        """The algorithm's last-reported position in its own search
        structure (rotation, kind, draw count, ...).  Opaque and purely
        informational: checkpoints store it so an interrupted run can be
        inspected, and ``--resume`` reports where it picks up.  Resume
        correctness never depends on it — the replay ledger regenerates
        the position exactly (see :mod:`repro.resilience.checkpoint`)."""
        base = dict(getattr(self, "_cursor_base", {}))
        base.update(getattr(self, "_cursor", {}))
        return base

    def _set_cursor(self, **fields) -> None:
        """Record the current position (merged over ``_cursor_base``,
        which outer loops — e.g. CCD's rotations — may set)."""
        self._cursor = fields

    @abc.abstractmethod
    def search(
        self,
        space: SearchSpace,
        oracle: Oracle,
        rng: RngStream,
        start: Optional[Mapping] = None,
    ) -> SearchResult:
        """Run the search until the oracle's budget is exhausted or the
        algorithm's natural end; returns the best mapping found."""

    # ------------------------------------------------------------------
    # Telemetry hooks (no-ops unless a telemetry sink is attached)
    # ------------------------------------------------------------------
    def _round_begin(self, oracle: Oracle) -> None:
        """Mark the start of one round of the algorithm's outer loop."""
        if self.telemetry is not None:
            self.telemetry.begin_round(oracle)

    def _round_end(self, oracle: Oracle, label: Optional[str] = None) -> None:
        """Close the round opened by :meth:`_round_begin`; the default
        label renders the algorithm's cursor (rotation, kind, ...)."""
        if self.telemetry is not None:
            if label is None:
                label = " ".join(
                    f"{key}={value}" for key, value in self.cursor.items()
                )
            self.telemetry.end_round(oracle, self.name, label)

    # ------------------------------------------------------------------
    # Helpers shared by concrete algorithms
    # ------------------------------------------------------------------
    @staticmethod
    def ordered_kinds(
        space: SearchSpace, oracle: Oracle, mapping: Mapping
    ) -> List[str]:
        """Task kinds ordered from longest running to shortest under
        ``mapping`` (Alg. 1 line 6)."""
        runtimes = oracle.kind_runtimes(mapping)
        return sorted(
            space.kind_names(),
            key=lambda name: (-runtimes.get(name, 0.0), name),
        )

    @staticmethod
    def ordered_slots(space: SearchSpace, kind_name: str) -> List[int]:
        """Slot indices of ``kind_name`` ordered from largest bound
        collection to smallest (Alg. 1 line 14)."""
        graph = space.graph
        sizes = {}
        for launch in graph.launches_of_kind(kind_name):
            for index, arg in enumerate(launch.args):
                sizes[index] = max(sizes.get(index, 0), arg.nbytes)
        kind = graph.kind(kind_name)
        return sorted(
            range(kind.num_slots),
            key=lambda index: (-sizes.get(index, 0), index),
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"
