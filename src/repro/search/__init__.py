"""Search algorithms over the mapping space (paper §4).

AutoMap's driver treats search algorithms as pluggable components.  This
package implements:

- :class:`~repro.search.cd.CoordinateDescent` — Algorithm 1 without the
  co-location line (§4.1);
- :class:`~repro.search.ccd.ConstrainedCoordinateDescent` — the paper's
  contribution: rotations over CD with co-location constraints on
  overlapping collections, relaxed by edge pruning (§4.2, Algorithms 1+2);
- :class:`~repro.search.ensemble.EnsembleTuner` — an OpenTuner-style
  generic tuner: ensembles of techniques under a multi-armed bandit, no
  support for constrained spaces (§4.3);
- :class:`~repro.search.random_search.RandomSearch` and
  :class:`~repro.search.exhaustive.ExhaustiveSearch` — baselines used in
  tests and ablations.

All algorithms speak to an evaluation *oracle*
(:class:`~repro.search.base.Oracle`) that measures candidate mappings,
deduplicates repeats, rejects invalid mappings with a high value, and
enforces the time/evaluation budget.
"""

from repro.search.base import (
    EvalOutcome,
    Oracle,
    SearchAlgorithm,
    SearchResult,
    TracePoint,
)
from repro.search.cd import CoordinateDescent
from repro.search.ccd import ConstrainedCoordinateDescent
from repro.search.colocation import apply_colocation_constraints
from repro.search.ensemble import EnsembleTuner
from repro.search.random_search import RandomSearch
from repro.search.exhaustive import ExhaustiveSearch

__all__ = [
    "Oracle",
    "EvalOutcome",
    "SearchAlgorithm",
    "SearchResult",
    "TracePoint",
    "CoordinateDescent",
    "ConstrainedCoordinateDescent",
    "apply_colocation_constraints",
    "EnsembleTuner",
    "RandomSearch",
    "ExhaustiveSearch",
]
