"""Exhaustive enumeration for tiny search spaces.

Real applications have astronomically many mappings (Figure 5 reports up
to ~2^128), but unit tests and micro-examples benefit from a ground-truth
optimum.  :class:`ExhaustiveSearch` enumerates every *valid* mapping and
refuses spaces larger than a safety bound.
"""

from __future__ import annotations

from typing import Optional

from repro.mapping.mapping import Mapping
from repro.mapping.space import SearchSpace
from repro.search.base import (
    INFEASIBLE,
    Oracle,
    SearchAlgorithm,
    SearchResult,
)
from repro.util.rng import RngStream

__all__ = ["ExhaustiveSearch"]


class ExhaustiveSearch(SearchAlgorithm):
    """Enumerate every valid mapping (spaces up to ``max_size``)."""

    name = "exhaustive"

    def __init__(self, max_size: int = 200_000) -> None:
        self.max_size = max_size

    def search(
        self,
        space: SearchSpace,
        oracle: Oracle,
        rng: RngStream,
        start: Optional[Mapping] = None,
    ) -> SearchResult:
        size = space.size()
        if size > self.max_size:
            raise ValueError(
                f"search space has {size} mappings; exhaustive search is "
                f"capped at {self.max_size}"
            )
        best: Optional[Mapping] = None
        best_perf = INFEASIBLE
        for candidate in space.enumerate_valid():
            if oracle.exhausted:
                break
            outcome = oracle.evaluate(candidate)
            if outcome.performance < best_perf:
                best, best_perf = candidate, outcome.performance
        return SearchResult(
            algorithm=self.name,
            best_mapping=best,
            best_performance=best_perf,
            trace=list(getattr(oracle, "trace", [])),
            suggested=getattr(oracle, "suggested", 0),
            evaluated=getattr(oracle, "evaluated", 0),
        )
