"""Constrained coordinate-wise descent — the paper's contribution (§4.2).

CCD runs ``N`` rotations of coordinate-wise descent.  During a rotation,
every memory move is propagated through the co-location constraints
(Algorithm 2): collections that overlap must share a memory kind, so a
single step can move whole groups of collection arguments together —
the coordinated moves that let CCD escape the local optimum of §4.2's
multi-physics example, where no sequence of strictly-improving single
moves reaches the all-Zero-Copy mapping.

After each rotation, ``1/(N-1)`` of the lightest edges of the induced
collection graph are pruned, relaxing the data-movement constraint; the
final rotation is therefore unconstrained, i.e. plain CD.  The best
mapping of rotation *i* seeds rotation *i+1*.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.mapping.mapping import Mapping
from repro.mapping.space import SearchSpace
from repro.search.base import Oracle, SearchResult
from repro.search.cd import CoordinateDescent
from repro.taskgraph.induced import induced_collection_graph
from repro.util.logging import get_logger, kv
from repro.util.rng import RngStream

__all__ = ["ConstrainedCoordinateDescent"]

_LOG = get_logger("search.ccd")

#: The paper's setting: "we set the number of rotations to 5 and prune
#: 1/4 of the edges of C at the end of each rotation" (§4.2).
DEFAULT_ROTATIONS = 5


class ConstrainedCoordinateDescent(CoordinateDescent):
    """CCD: rotations of CD under gradually-relaxed co-location
    constraints (Algorithms 1 + 2)."""

    name = "ccd"

    def __init__(self, rotations: int = DEFAULT_ROTATIONS) -> None:
        if rotations < 1:
            raise ValueError("rotations must be >= 1")
        self.rotations = rotations

    # ------------------------------------------------------------------
    def search(
        self,
        space: SearchSpace,
        oracle: Oracle,
        rng: RngStream,
        start: Optional[Mapping] = None,
    ) -> SearchResult:
        current = start if start is not None else space.default_mapping()
        outcome = oracle.evaluate(current)
        performance = outcome.performance

        colgraph = induced_collection_graph(space.graph)
        if self.rotations > 1:
            prune_per_rotation = math.ceil(
                colgraph.original_num_edges / (self.rotations - 1)
            )
        else:
            prune_per_rotation = colgraph.original_num_edges

        for rotation in range(1, self.rotations + 1):
            if oracle.exhausted:
                break
            self._cursor_base = {
                "rotation": rotation,
                "of": self.rotations,
            }
            _LOG.info(
                kv(
                    "rotation",
                    n=rotation,
                    of=self.rotations,
                    edges=colgraph.num_edges,
                    best=performance,
                )
            )
            current, performance = self._rotation(
                space,
                oracle,
                current,
                performance,
                colgraph=colgraph if colgraph.num_edges else None,
            )
            # Alg. 1 line 8: relax the data-movement constraint.
            colgraph.prune_lightest(prune_per_rotation)

        return self._result(oracle, current, performance)
