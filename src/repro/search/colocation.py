"""Co-location constraint propagation — Algorithm 2 of the paper.

When CCD considers mapping collection-argument slot ``c`` of task ``t``
to memory kind ``r`` (with ``t`` on processor kind ``k``), the co-location
constraint requires every slot whose collections overlap ``c`` to move to
``r`` too.  That move can strand other tasks (their processor kind can no
longer address the new memory kind) and other collections (their task was
moved), so the adjustment iterates to a fixed point:

* a task whose argument lives in an unaddressable memory kind is moved to
  ``k`` (line 12) — or, when it lacks a ``k`` variant, to any variant
  that can address the memory (a necessary generalisation the paper's
  all-variants benchmarks never exercise);
* a collection argument of a moved task is remapped to a memory kind its
  new processor can address, and its own overlap neighbourhood is dragged
  along (lines 14-26), except slots overlapping the original ``(t, c)``,
  which stay pinned at ``r`` (line 17).

The iteration converges because the limiting case maps every task and
collection to a single kind (paper §4.2); a generous iteration cap guards
against implementation bugs rather than algorithmic divergence.  A final
legalisation sweep guarantees the returned mapping satisfies constraint
(1) even when variant restrictions make full co-location unsatisfiable.
"""

from __future__ import annotations

from typing import Optional, Set

from repro.machine.kinds import ADDRESSABLE, MemKind, ProcKind
from repro.mapping.mapping import Mapping
from repro.mapping.space import SearchSpace
from repro.taskgraph.induced import CollectionGraph, SlotRef
from repro.util.logging import get_logger

__all__ = ["apply_colocation_constraints"]

_LOG = get_logger("search.colocation")

#: Hard cap on worklist pops; fixed points arrive in a handful of sweeps.
_MAX_STEPS = 100_000


def _choose_proc(
    space: SearchSpace,
    kind_name: str,
    mem_kind: MemKind,
    prefer: ProcKind,
) -> Optional[ProcKind]:
    """A processor kind for ``kind_name`` that can address ``mem_kind``,
    preferring ``prefer``; ``None`` when no variant qualifies."""
    options = space.dims(kind_name).proc_options
    if prefer in options and (prefer, mem_kind) in ADDRESSABLE:
        return prefer
    for option in options:
        if (option, mem_kind) in ADDRESSABLE:
            return option
    return None


def _fastest_mem(space: SearchSpace, kind_name: str, proc: ProcKind) -> MemKind:
    """The fastest machine-present memory kind addressable by ``proc``."""
    return space.dims(kind_name).mem_options[proc][0]


def apply_colocation_constraints(
    space: SearchSpace,
    colgraph: CollectionGraph,
    mapping: Mapping,
    kind_name: str,
    slot_index: int,
    proc_kind: ProcKind,
    mem_kind: MemKind,
) -> Mapping:
    """Propagate co-location constraints after mapping ``(t, c)`` to
    ``(k, r)`` — Algorithm 2.

    ``mapping`` must already have ``kind_name`` on ``proc_kind`` and slot
    ``slot_index`` on ``mem_kind`` (the caller's line 16).  Returns a
    mapping satisfying constraint (1) globally and constraint (2) as far
    as task variants allow.
    """
    origin: SlotRef = (kind_name, slot_index)
    f = mapping
    t_check: Set[str] = set()
    c_check: Set[SlotRef] = set()

    # Lines 4-6: drag every slot overlapping the origin to mem_kind.
    # Kinds outside the searched subset (fixed decisions, §3.3) are
    # never modified.
    for neighbor in colgraph.neighbors(origin):
        n_kind, n_slot = neighbor
        if not space.is_tunable(n_kind):
            continue
        if neighbor != origin:
            f = f.with_mem(n_kind, n_slot, mem_kind)
        t_check.add(n_kind)

    steps = 0
    while t_check or c_check:
        # Lines 8-13: tasks whose arguments became unaddressable.
        while t_check:
            steps += 1
            if steps > _MAX_STEPS:
                _LOG.warning(
                    "colocation fixed point not reached for %s[%d]; "
                    "falling back to legalisation",
                    kind_name,
                    slot_index,
                )
                return _legalize(space, f)
            t_name = min(t_check)
            t_check.discard(t_name)
            decision = f.decision(t_name)
            offending = [
                (s_index, s_mem)
                for s_index, s_mem in enumerate(decision.mem_kinds)
                if (decision.proc_kind, s_mem) not in ADDRESSABLE
            ]
            if not offending:
                continue
            # Line 12: move the task to k — once.  Choosing a processor
            # per offending slot instead would ping-pong a task between
            # kinds whose memories conflict.  When the task lacks a k
            # variant, fall back to a variant that can address the first
            # offending memory (still a single move).
            if t_name != kind_name:
                options = space.dims(t_name).proc_options
                if (
                    proc_kind in options
                    and decision.proc_kind != proc_kind
                ):
                    f = f.with_proc(t_name, proc_kind)
                    decision = f.decision(t_name)
                elif proc_kind not in options:
                    new_proc = _choose_proc(
                        space, t_name, offending[0][1], prefer=proc_kind
                    )
                    if (
                        new_proc is not None
                        and new_proc != decision.proc_kind
                    ):
                        f = f.with_proc(t_name, new_proc)
                        decision = f.decision(t_name)
            for s_index, s_mem in enumerate(decision.mem_kinds):
                if (decision.proc_kind, s_mem) not in ADDRESSABLE:
                    c_check.add((t_name, s_index))

        # Lines 14-26: collections of moved tasks.
        while c_check:
            steps += 1
            if steps > _MAX_STEPS:
                _LOG.warning(
                    "colocation fixed point not reached for %s[%d]; "
                    "falling back to legalisation",
                    kind_name,
                    slot_index,
                )
                return _legalize(space, f)
            slot = min(c_check)
            c_check.discard(slot)
            s_kind, s_index = slot
            decision = f.decision(s_kind)
            if (decision.proc_kind, decision.mem_kinds[s_index]) in ADDRESSABLE:
                continue  # already fixed by a task move
            # Line 17: slots overlapping the origin stay pinned at r —
            # unless that pin is what makes them unaddressable and the
            # task cannot move (no suitable variant).
            if colgraph.connected(origin, slot) or slot == origin:
                rescue = _choose_proc(
                    space, s_kind, decision.mem_kinds[s_index], prefer=proc_kind
                )
                if rescue is not None:
                    if rescue != decision.proc_kind:
                        f = f.with_proc(s_kind, rescue)
                        t_check.add(s_kind)
                    continue
                # fall through: unpin as a last resort
            target = _fastest_mem(space, s_kind, decision.proc_kind)
            f = f.with_mem(s_kind, s_index, target)
            # Lines 20-26: drag this slot's own neighbourhood along.
            for neighbor in colgraph.neighbors(slot):
                n_kind, n_slot = neighbor
                if neighbor == slot or not space.is_tunable(n_kind):
                    continue
                n_decision = f.decision(n_kind)
                if n_decision.mem_kinds[n_slot] == target:
                    continue
                if colgraph.connected(origin, neighbor) or neighbor == origin:
                    continue  # pinned at r
                f = f.with_mem(n_kind, n_slot, target)
                if (n_decision.proc_kind, target) not in ADDRESSABLE:
                    t_check.add(n_kind)
                c_check.discard(neighbor)

    return _legalize(space, f)


def _legalize(space: SearchSpace, mapping: Mapping) -> Mapping:
    """Final sweep enforcing constraint (1): any slot still mapped to an
    unaddressable memory kind moves to the fastest addressable kind.
    Only searched kinds are touched (fixed kinds are valid by
    construction)."""
    f = mapping
    for kind_name in space.kind_names():
        decision = f.decision(kind_name)
        for s_index, s_mem in enumerate(decision.mem_kinds):
            if (decision.proc_kind, s_mem) not in ADDRESSABLE:
                f = f.with_mem(
                    kind_name,
                    s_index,
                    _fastest_mem(space, kind_name, decision.proc_kind),
                )
                decision = f.decision(kind_name)
    return f
