"""OpenTuner-style ensemble tuner (paper §4.3).

The real OpenTuner is not installable offline; this module re-implements
the structural properties the paper's comparison relies on:

* an **ensemble of techniques** (random, greedy mutation, genetic
  crossover, pattern search) running under an AUC multi-armed bandit
  that shifts budget toward techniques that find better mappings;
* **no support for constrained spaces**: techniques operate on the plain
  cross-product encoding and freely propose invalid mappings; AutoMap
  "returns a high value whenever OpenTuner suggests an invalid mapping";
* a **suggested ≫ evaluated** profile: duplicated and invalid proposals
  are not executed (the oracle deduplicates), so the tuner suggests
  orders of magnitude more mappings than it measures — the §5.3
  statistic (OpenTuner: ~157 202 suggested, ~273 evaluated on Pennant).

With a batching oracle the tuner *speculates a generation ahead*: it
clones the tuner state, bandit, and techniques, predicts the next batch
of suggestions (outcomes of already-known candidates are exact via the
oracle's ``peek``; unknown candidates are assumed non-improving — the
overwhelmingly common case), and prefetches the unknowns in parallel.
The real suggestion loop then replays serially against live state, so
results are bit-identical to the serial tuner: a wrong prediction only
costs prefetch misses, never correctness.  The per-suggestion rng is
forked from the absolute suggestion counter, so speculation and replay
see identical random streams.
"""

from __future__ import annotations

import copy
from typing import Dict, List, Optional

from repro.mapping.mapping import Mapping
from repro.mapping.space import SearchSpace
from repro.search.bandit import AUCBandit
from repro.search.base import (
    INFEASIBLE,
    Oracle,
    SearchAlgorithm,
    SearchResult,
)
from repro.search.techniques import (
    Technique,
    TunerState,
    default_techniques,
)
from repro.util.logging import get_logger, kv
from repro.util.rng import RngStream

__all__ = ["EnsembleTuner"]

_LOG = get_logger("search.ensemble")


class EnsembleTuner(SearchAlgorithm):
    """Bandit-driven ensemble over unconstrained suggestion techniques."""

    name = "opentuner"

    def __init__(
        self,
        techniques: Optional[List[Technique]] = None,
        max_suggestions: Optional[int] = None,
        bandit_window: int = 100,
        bandit_exploration: float = 0.05,
    ) -> None:
        self._technique_factory = techniques
        self.max_suggestions = max_suggestions
        self.bandit_window = bandit_window
        self.bandit_exploration = bandit_exploration

    # ------------------------------------------------------------------
    def search(
        self,
        space: SearchSpace,
        oracle: Oracle,
        rng: RngStream,
        start: Optional[Mapping] = None,
    ) -> SearchResult:
        techniques = (
            list(self._technique_factory)
            if self._technique_factory is not None
            else default_techniques()
        )
        by_name = {t.name: t for t in techniques}
        bandit = AUCBandit(
            [t.name for t in techniques],
            window_size=self.bandit_window,
            exploration=self.bandit_exploration,
        )
        state = TunerState(dims=space.vector_dims())

        # Seed with the starting point (a valid mapping).
        seed_mapping = start if start is not None else space.default_mapping()
        seed_outcome = oracle.evaluate(seed_mapping)
        state.record(space.encode(seed_mapping), seed_outcome.performance)
        best_mapping = seed_mapping
        best_performance = seed_outcome.performance

        batch_size = max(1, getattr(oracle, "batch_size", 1))
        suggestions = 0
        while not oracle.exhausted:
            if (
                self.max_suggestions is not None
                and suggestions >= self.max_suggestions
            ):
                break
            self._set_cursor(suggestions=suggestions)
            self._round_begin(oracle)
            if batch_size > 1:
                self._speculate(
                    space, oracle, state, bandit, by_name, rng,
                    suggestions, batch_size,
                )
            for _ in range(batch_size):
                if oracle.exhausted:
                    break
                if (
                    self.max_suggestions is not None
                    and suggestions >= self.max_suggestions
                ):
                    break
                arm = bandit.select()
                technique = by_name[arm]
                vector = technique.suggest(
                    state, rng.fork("suggest", str(suggestions))
                )
                suggestions += 1
                mapping = space.decode(vector)
                outcome = oracle.evaluate(mapping)
                improved = state.record(vector, outcome.performance)
                bandit.report(arm, improved)
                if improved and outcome.performance < best_performance:
                    best_mapping = mapping
                    best_performance = outcome.performance
            self._round_end(oracle)

        _LOG.info(
            kv(
                "ensemble-done",
                batched=batch_size > 1,
                best=best_performance,
                suggestions=suggestions,
                usage=str(bandit.usage()),
            )
        )
        return SearchResult(
            algorithm=self.name,
            best_mapping=(
                best_mapping if best_performance < INFEASIBLE else None
            ),
            best_performance=best_performance,
            trace=list(getattr(oracle, "trace", [])),
            suggested=getattr(oracle, "suggested", suggestions),
            evaluated=getattr(oracle, "evaluated", 0),
        )

    # ------------------------------------------------------------------
    @staticmethod
    def _speculate(
        space: SearchSpace,
        oracle: Oracle,
        state: TunerState,
        bandit: AUCBandit,
        by_name: Dict[str, Technique],
        rng: RngStream,
        start: int,
        count: int,
    ) -> None:
        """Predict the next ``count`` suggestions on cloned tuner state
        and prefetch the candidates that would need an execution.

        Known candidates (profiled, duplicated, or invalid) get their
        exact predicted outcome from the oracle's ``peek``; unknown ones
        are assumed non-improving, so a prediction only diverges from the
        real loop after an unknown candidate turns out to be a new best —
        rare, and merely a prefetch miss when it happens.  The clones
        guarantee the speculation leaves no trace on live state (the
        pattern-search technique, for one, mutates its cursor in
        ``suggest``).
        """
        peek = getattr(oracle, "peek", None)
        prefetch = getattr(oracle, "prefetch", None)
        if peek is None or prefetch is None:
            return
        sim_state = copy.deepcopy(state)
        sim_bandit = copy.deepcopy(bandit)
        sim_techniques = copy.deepcopy(by_name)
        unknown: List[Mapping] = []
        for offset in range(count):
            arm = sim_bandit.select()
            vector = sim_techniques[arm].suggest(
                sim_state, rng.fork("suggest", str(start + offset))
            )
            mapping = space.decode(vector)
            known = peek(mapping)
            if known is None:
                unknown.append(mapping)
                predicted = float("inf")
            else:
                predicted = known
            improved = sim_state.record(vector, predicted)
            sim_bandit.report(arm, improved)
        if unknown:
            prefetch(unknown)
