"""OpenTuner-style ensemble tuner (paper §4.3).

The real OpenTuner is not installable offline; this module re-implements
the structural properties the paper's comparison relies on:

* an **ensemble of techniques** (random, greedy mutation, genetic
  crossover, pattern search) running under an AUC multi-armed bandit
  that shifts budget toward techniques that find better mappings;
* **no support for constrained spaces**: techniques operate on the plain
  cross-product encoding and freely propose invalid mappings; AutoMap
  "returns a high value whenever OpenTuner suggests an invalid mapping";
* a **suggested ≫ evaluated** profile: duplicated and invalid proposals
  are not executed (the oracle deduplicates), so the tuner suggests
  orders of magnitude more mappings than it measures — the §5.3
  statistic (OpenTuner: ~157 202 suggested, ~273 evaluated on Pennant).
"""

from __future__ import annotations

from typing import List, Optional

from repro.mapping.mapping import Mapping
from repro.mapping.space import SearchSpace
from repro.search.bandit import AUCBandit
from repro.search.base import (
    INFEASIBLE,
    Oracle,
    SearchAlgorithm,
    SearchResult,
)
from repro.search.techniques import (
    Technique,
    TunerState,
    default_techniques,
)
from repro.util.logging import get_logger, kv
from repro.util.rng import RngStream

__all__ = ["EnsembleTuner"]

_LOG = get_logger("search.ensemble")


class EnsembleTuner(SearchAlgorithm):
    """Bandit-driven ensemble over unconstrained suggestion techniques."""

    name = "opentuner"

    def __init__(
        self,
        techniques: Optional[List[Technique]] = None,
        max_suggestions: Optional[int] = None,
        bandit_window: int = 100,
        bandit_exploration: float = 0.05,
    ) -> None:
        self._technique_factory = techniques
        self.max_suggestions = max_suggestions
        self.bandit_window = bandit_window
        self.bandit_exploration = bandit_exploration

    # ------------------------------------------------------------------
    def search(
        self,
        space: SearchSpace,
        oracle: Oracle,
        rng: RngStream,
        start: Optional[Mapping] = None,
    ) -> SearchResult:
        techniques = (
            list(self._technique_factory)
            if self._technique_factory is not None
            else default_techniques()
        )
        by_name = {t.name: t for t in techniques}
        bandit = AUCBandit(
            [t.name for t in techniques],
            window_size=self.bandit_window,
            exploration=self.bandit_exploration,
        )
        state = TunerState(dims=space.vector_dims())

        # Seed with the starting point (a valid mapping).
        seed_mapping = start if start is not None else space.default_mapping()
        seed_outcome = oracle.evaluate(seed_mapping)
        state.record(space.encode(seed_mapping), seed_outcome.performance)
        best_mapping = seed_mapping
        best_performance = seed_outcome.performance

        suggestions = 0
        while not oracle.exhausted:
            if (
                self.max_suggestions is not None
                and suggestions >= self.max_suggestions
            ):
                break
            arm = bandit.select()
            technique = by_name[arm]
            vector = technique.suggest(state, rng.fork("suggest", str(suggestions)))
            suggestions += 1
            mapping = space.decode(vector)
            outcome = oracle.evaluate(mapping)
            improved = state.record(vector, outcome.performance)
            bandit.report(arm, improved)
            if improved and outcome.performance < best_performance:
                best_mapping = mapping
                best_performance = outcome.performance

        _LOG.info(
            kv(
                "ensemble-done",
                best=best_performance,
                suggestions=suggestions,
                usage=str(bandit.usage()),
            )
        )
        return SearchResult(
            algorithm=self.name,
            best_mapping=(
                best_mapping if best_performance < INFEASIBLE else None
            ),
            best_performance=best_performance,
            trace=list(getattr(oracle, "trace", [])),
            suggested=getattr(oracle, "suggested", suggestions),
            evaluated=getattr(oracle, "evaluated", 0),
        )
