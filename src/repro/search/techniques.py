"""Search techniques for the ensemble tuner.

Each technique proposes integer vectors in the *unconstrained* encoding
of the search space (:meth:`repro.mapping.space.SearchSpace.decode`), so
— like OpenTuner — they can and do propose invalid mappings (e.g. a CPU
task with a Frame-Buffer argument), which the oracle rejects with a high
value (paper §4.3).

The ensemble mirrors OpenTuner's stock lineup: pure random, greedy
mutation of the incumbent, a genetic crossover over an elite population,
and a cycling pattern search.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.util.rng import RngStream

__all__ = [
    "TunerState",
    "Technique",
    "UniformRandom",
    "GreedyMutation",
    "GeneticCrossover",
    "PatternSearch",
    "default_techniques",
]


@dataclass
class TunerState:
    """Shared tuner state visible to all techniques."""

    dims: List[int]
    best_vector: Optional[List[int]] = None
    best_performance: float = float("inf")
    #: Elite population of (performance, vector), best first, bounded.
    population: List[Tuple[float, List[int]]] = field(default_factory=list)
    population_cap: int = 16

    def record(self, vector: List[int], performance: float) -> bool:
        """Fold a result into the state; returns True on a new global
        best."""
        improved = performance < self.best_performance
        if improved:
            self.best_performance = performance
            self.best_vector = list(vector)
        self.population.append((performance, list(vector)))
        self.population.sort(key=lambda item: item[0])
        del self.population[self.population_cap :]
        return improved


class Technique(abc.ABC):
    """One suggestion strategy inside the ensemble."""

    name: str = "technique"

    @abc.abstractmethod
    def suggest(self, state: TunerState, rng: RngStream) -> List[int]:
        """Propose the next vector to measure."""

    @staticmethod
    def _random_vector(dims: Sequence[int], rng: RngStream) -> List[int]:
        return [rng.integers(0, max(1, d)) for d in dims]


class UniformRandom(Technique):
    """Uniform random sampling of the unconstrained space."""

    name = "random"

    def suggest(self, state: TunerState, rng: RngStream) -> List[int]:
        return self._random_vector(state.dims, rng)


class GreedyMutation(Technique):
    """Mutate 1-2 random dimensions of the incumbent best."""

    name = "greedy-mutation"

    def __init__(self, max_mutations: int = 2) -> None:
        if max_mutations < 1:
            raise ValueError("max_mutations must be >= 1")
        self.max_mutations = max_mutations

    def suggest(self, state: TunerState, rng: RngStream) -> List[int]:
        if state.best_vector is None:
            return self._random_vector(state.dims, rng)
        vector = list(state.best_vector)
        mutations = rng.integers(1, self.max_mutations + 1)
        for _ in range(mutations):
            dim = rng.integers(0, len(vector))
            vector[dim] = rng.integers(0, max(1, state.dims[dim]))
        return vector


class GeneticCrossover(Technique):
    """Uniform crossover of two elite parents plus one mutation."""

    name = "genetic"

    def suggest(self, state: TunerState, rng: RngStream) -> List[int]:
        if len(state.population) < 2:
            return self._random_vector(state.dims, rng)
        pool = state.population[: max(2, len(state.population) // 2)]
        a = rng.choice(pool)[1]
        b = rng.choice(pool)[1]
        child = [
            a[i] if rng.uniform() < 0.5 else b[i] for i in range(len(a))
        ]
        dim = rng.integers(0, len(child))
        child[dim] = rng.integers(0, max(1, state.dims[dim]))
        return child


class PatternSearch(Technique):
    """Cycle through dimensions stepping the incumbent by ±1 (modular)."""

    name = "pattern"

    def __init__(self) -> None:
        self._cursor = 0
        self._direction = 1

    def suggest(self, state: TunerState, rng: RngStream) -> List[int]:
        if state.best_vector is None:
            return self._random_vector(state.dims, rng)
        vector = list(state.best_vector)
        dim = self._cursor % len(vector)
        cardinality = max(1, state.dims[dim])
        vector[dim] = (vector[dim] + self._direction) % cardinality
        # Advance: flip direction each full cycle.
        self._cursor += 1
        if self._cursor % len(vector) == 0:
            self._direction = -self._direction
        return vector


def default_techniques() -> List[Technique]:
    """The stock OpenTuner-style ensemble."""
    return [
        UniformRandom(),
        GreedyMutation(),
        GeneticCrossover(),
        PatternSearch(),
    ]
