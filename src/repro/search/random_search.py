"""Uniform random search — the simplest baseline.

Draws valid mappings uniformly at random until the budget runs out.
Used in tests (any real algorithm should beat it on structured problems)
and as one of the techniques inside the ensemble tuner.

Random draws are independent, so with a batching oracle the search
submits generation-sized batches: drawing a generation up front consumes
the rng identically to drawing one-by-one (evaluation uses no
randomness), and the oracle replays the batch in submission order, so
results are bit-identical to the serial loop.
"""

from __future__ import annotations

from typing import Optional

from repro.mapping.mapping import Mapping
from repro.mapping.space import SearchSpace
from repro.search.base import (
    INFEASIBLE,
    Oracle,
    SearchAlgorithm,
    SearchResult,
)
from repro.util.rng import RngStream

__all__ = ["RandomSearch"]


class RandomSearch(SearchAlgorithm):
    """Evaluate uniformly random valid mappings until exhausted."""

    name = "random"

    # Outcomes are only compared against the best-so-far (strict ``<``,
    # in evaluation order), so a sound lower bound ``>=`` the incumbent
    # rejects exactly like the real measurement would.
    supports_bound_pruning = True

    def __init__(self, max_draws: Optional[int] = None) -> None:
        self.max_draws = max_draws

    def search(
        self,
        space: SearchSpace,
        oracle: Oracle,
        rng: RngStream,
        start: Optional[Mapping] = None,
    ) -> SearchResult:
        best = start if start is not None else space.default_mapping()
        best_perf = oracle.evaluate(best).performance
        batch_size = max(1, getattr(oracle, "batch_size", 1))
        draws = 0
        while not oracle.exhausted:
            if self.max_draws is not None and draws >= self.max_draws:
                break
            self._set_cursor(draws=draws)
            self._round_begin(oracle)
            generation = batch_size
            if self.max_draws is not None:
                generation = min(generation, self.max_draws - draws)
            batch = [
                space.random_mapping(rng, valid=True)
                for _ in range(generation)
            ]
            outcomes = (
                oracle.evaluate_many(batch)
                if generation > 1
                else [oracle.evaluate(batch[0])]
            )
            # The oracle stops a batch mid-way when the budget runs out;
            # unconsumed draws are discarded, exactly as the serial loop
            # would never have drawn them.
            draws += len(outcomes)
            self._round_end(oracle)
            for candidate, outcome in zip(batch, outcomes):
                if outcome.performance < best_perf:
                    best, best_perf = candidate, outcome.performance
        return SearchResult(
            algorithm=self.name,
            best_mapping=best if best_perf < INFEASIBLE else None,
            best_performance=best_perf,
            trace=list(getattr(oracle, "trace", [])),
            suggested=getattr(oracle, "suggested", 0),
            evaluated=getattr(oracle, "evaluated", 0),
        )
