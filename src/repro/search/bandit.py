"""Multi-armed bandit meta-controller for the ensemble tuner.

OpenTuner allocates trials among its techniques with an area-under-curve
credit-assignment bandit: "techniques that find better mappings have a
larger budget to select the subsequent mappings for evaluation, while the
ones that perform poorly evaluate fewer mappings" (paper §4.3).  This is
the same mechanism: each arm keeps a sliding window of use outcomes
(did the suggestion produce a new global best?), scored by a
recency-weighted AUC plus a UCB-style exploration bonus.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from math import log, sqrt
from typing import Deque, Dict, Sequence

__all__ = ["AUCBandit"]


@dataclass
class _Arm:
    name: str
    window: Deque[bool] = field(default_factory=deque)
    uses: int = 0

    def auc(self) -> float:
        """Recency-weighted fraction of window uses that improved the
        global best: newer successes count more."""
        if not self.window:
            return 0.0
        num = 0.0
        den = 0.0
        for i, improved in enumerate(self.window):
            weight = i + 1.0
            den += weight
            if improved:
                num += weight
        return num / den


class AUCBandit:
    """Sliding-window AUC bandit over a fixed set of arms."""

    def __init__(
        self,
        arms: Sequence[str],
        window_size: int = 100,
        exploration: float = 0.05,
    ) -> None:
        if not arms:
            raise ValueError("bandit needs at least one arm")
        if len(set(arms)) != len(arms):
            raise ValueError("arm names must be unique")
        self.window_size = window_size
        self.exploration = exploration
        self._arms: Dict[str, _Arm] = {name: _Arm(name) for name in arms}
        self._total_uses = 0

    # ------------------------------------------------------------------
    def select(self) -> str:
        """The arm with the highest AUC + exploration score.  Unused arms
        are always tried first (in declaration order)."""
        for arm in self._arms.values():
            if arm.uses == 0:
                return arm.name
        total = max(1, self._total_uses)

        def score(arm: _Arm) -> float:
            bonus = self.exploration * sqrt(2.0 * log(total) / arm.uses)
            return arm.auc() + bonus

        best_name = None
        best_score = float("-inf")
        for name, arm in self._arms.items():
            s = score(arm)
            if s > best_score:
                best_name, best_score = name, s
        assert best_name is not None
        return best_name

    def report(self, arm_name: str, improved: bool) -> None:
        """Record the outcome of one use of an arm."""
        arm = self._arms[arm_name]
        arm.uses += 1
        self._total_uses += 1
        arm.window.append(improved)
        while len(arm.window) > self.window_size:
            arm.window.popleft()

    # ------------------------------------------------------------------
    def usage(self) -> Dict[str, int]:
        """Uses per arm (for reports and tests)."""
        return {name: arm.uses for name, arm in self._arms.items()}
