"""Picklable simulator specs and the worker-process entry points.

A :class:`SimulatorSpec` captures everything needed to rebuild a
:class:`~repro.runtime.simulator.Simulator` in another process: the task
graph, the machine model, and the simulator configuration — all plain
picklable data.  Worker processes receive the spec once (through the
pool initializer), rebuild the simulator, and then serve per-mapping
execution requests, returning only the deterministic part of the result
(makespan, execution report, executed mapping).  Noise draws stay on the
driver process: :class:`~repro.runtime.noise.NoiseModel` is a pure
function of (seed, context, run index), so sampling after the fact is
bit-identical to sampling inline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.analysis.validity import explain_problems
from repro.machine.model import Machine
from repro.mapping.mapping import Mapping
from repro.resilience.faults import FaultPlan
from repro.runtime.executor import ExecutionReport
from repro.runtime.memory import OOMError
from repro.runtime.simulator import SimConfig, SimResult, Simulator
from repro.taskgraph.graph import TaskGraph

__all__ = ["SimulatorSpec", "WorkerResult"]


@dataclass(frozen=True)
class SimulatorSpec:
    """Everything a worker needs to rebuild the driver's simulator."""

    graph: TaskGraph
    machine: Machine
    sim_config: SimConfig

    @staticmethod
    def of(simulator: Simulator) -> "SimulatorSpec":
        return SimulatorSpec(
            graph=simulator.graph,
            machine=simulator.machine,
            sim_config=simulator.config,
        )

    def build(self) -> Simulator:
        return Simulator(self.graph, self.machine, self.sim_config)


@dataclass(frozen=True)
class WorkerResult:
    """The deterministic outcome of simulating one mapping in a worker.

    ``oom_reason`` is set (and the result fields are None) when the
    mapping overflowed a memory with spill disabled; the driver-side
    replay reproduces the :class:`OOMError` from its own memory planner.
    ``invalid_reason`` is set when the mapping fails the shared
    kind-level validity checker; the replay reproduces the rejection
    from the same checker.
    """

    makespan: Optional[float] = None
    executed_mapping: Optional[Mapping] = None
    report: Optional[ExecutionReport] = None
    oom_reason: Optional[str] = None
    invalid_reason: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.oom_reason is None and self.invalid_reason is None

    def to_sim_result(self) -> SimResult:
        assert self.ok
        return SimResult(
            makespan=self.makespan,
            executed_mapping=self.executed_mapping,
            report=self.report,
        )


#: Per-worker-process simulator, built once by :func:`init_worker`.
_WORKER_SIMULATOR: Optional[Simulator] = None

#: Per-worker-process fault-injection plan (inactive unless the
#: ``REPRO_FAULT_*`` environment variables are set — see
#: :mod:`repro.resilience.faults`).
_WORKER_FAULTS: Optional[FaultPlan] = None


def init_worker(spec: SimulatorSpec) -> None:
    """Pool initializer: rebuild the simulator once per worker process."""
    global _WORKER_SIMULATOR, _WORKER_FAULTS
    _WORKER_SIMULATOR = spec.build()
    _WORKER_FAULTS = FaultPlan.from_env()


def run_mapping(mapping: Mapping, attempt: int = 0) -> WorkerResult:
    """Simulate one mapping in the worker's rebuilt simulator.

    Invalid mappings (per the shared kind-level checker in
    :mod:`repro.analysis.validity` — the same one the driver's oracle
    consults) and out-of-memory failures are expected outcomes and are
    returned as data, never as exceptions, so a stray candidate cannot
    poison the process pool.

    ``attempt`` is the supervision retry round, forwarded to the fault
    harness so a retried candidate re-rolls its (deterministic) fault
    dice rather than failing forever.
    """
    assert _WORKER_SIMULATOR is not None, "worker used before init_worker"
    if _WORKER_FAULTS is not None and _WORKER_FAULTS.active:
        _WORKER_FAULTS.maybe_fail(repr(mapping.key()), attempt)
    invalid = explain_problems(
        _WORKER_SIMULATOR.graph, _WORKER_SIMULATOR.machine, mapping
    )
    if invalid is not None:
        return WorkerResult(invalid_reason=invalid)
    try:
        result = _WORKER_SIMULATOR.run(mapping)
    except OOMError as exc:
        return WorkerResult(oom_reason=str(exc))
    return WorkerResult(
        makespan=result.makespan,
        executed_mapping=result.executed_mapping,
        report=result.report,
    )
