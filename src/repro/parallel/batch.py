"""Parallel batch evaluation of candidate mappings.

:class:`BatchOracle` wraps a :class:`~repro.core.oracle.SimulationOracle`
and fans the expensive part of evaluation — the deterministic simulation
of previously-unseen valid mappings — out over a process pool, while
keeping every observable result bit-identical to the serial oracle.

The trick is a strict split between *computing* and *accounting*:

* :meth:`prefetch` runs the deterministic simulations of a batch's cache
  misses in worker processes and absorbs the results into the driver-side
  simulator's memo cache.  It touches no oracle state — no suggestion
  counters, no search clock, no trace.
* :meth:`evaluate_many` prefetches, then replays the batch through the
  wrapped oracle's ordinary :meth:`~repro.core.oracle.SimulationOracle.
  evaluate` in submission order.  Every replayed evaluation is now a pure
  cache hit plus noise draws (noise is a pure function of seed, mapping
  key, and run index), so the accounting — ``suggested``, ``evaluated``,
  ``sim_elapsed``, the §5.3 trace — advances exactly as the serial path
  would have advanced it.

With ``workers=1`` the pool is never created and every call degrades to
the serial path, so a single code path in the search layer serves both
modes.
"""

from __future__ import annotations

import math
from concurrent.futures import ProcessPoolExecutor
from typing import TYPE_CHECKING, Iterable, List, Optional, Sequence

from repro.mapping.mapping import Mapping
from repro.mapping.validate import explain_invalid
from repro.parallel.spec import SimulatorSpec, init_worker, run_mapping
from repro.search.base import INFEASIBLE, EvalOutcome
from repro.util.logging import get_logger, kv

if TYPE_CHECKING:  # import cycle: repro.core.driver uses BatchOracle
    from repro.core.oracle import SimulationOracle

__all__ = ["BatchOracle"]

_LOG = get_logger("parallel.batch")

#: Batch capacity per worker: deep enough to amortise pool dispatch,
#: shallow enough that speculative batches rarely outrun the budget.
BATCH_DEPTH = 8


class BatchOracle:
    """A batching, process-parallel front-end over the serial oracle.

    Satisfies the :class:`repro.search.base.Oracle` protocol (single
    evaluations delegate to the wrapped oracle) and adds the batch API
    the search layer discovers by duck typing: ``batch_size``,
    ``prefetch``, ``evaluate_many``, and ``peek``.
    """

    def __init__(
        self,
        oracle: "SimulationOracle",
        workers: int = 1,
        batch_depth: int = BATCH_DEPTH,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.oracle = oracle
        self.workers = workers
        self.batch_depth = batch_depth
        self._pool: Optional[ProcessPoolExecutor] = None

    # ------------------------------------------------------------------
    # Oracle protocol: single-candidate path delegates untouched.
    # ------------------------------------------------------------------
    def evaluate(self, mapping: Mapping) -> EvalOutcome:
        return self.oracle.evaluate(mapping)

    @property
    def exhausted(self) -> bool:
        return self.oracle.exhausted

    def kind_runtimes(self, mapping: Mapping) -> dict:
        return self.oracle.kind_runtimes(mapping)

    def __getattr__(self, name: str):
        # Statistics, profiles, measure_more, ... — read-through to the
        # wrapped oracle so the driver can treat both interchangeably.
        return getattr(self.oracle, name)

    # ------------------------------------------------------------------
    # Batch API
    # ------------------------------------------------------------------
    @property
    def batch_size(self) -> int:
        """How many candidates the search layer should group per batch
        (1 = serial; algorithms fall back to one-at-a-time loops)."""
        if self.workers <= 1:
            return 1
        return self.workers * self.batch_depth

    def peek(self, mapping: Mapping) -> Optional[float]:
        """The performance this oracle *would* report for ``mapping`` if
        it is already decided — recorded profile or validity rejection —
        without consuming any budget or touching any statistic.  Returns
        None for candidates that would need an execution.  Used by
        speculative batch generation (e.g. the ensemble tuner predicting
        a generation ahead)."""
        simulator = self.oracle.simulator
        if explain_invalid(simulator.graph, simulator.machine, mapping):
            return INFEASIBLE
        mapping = self.oracle.canonical(mapping)
        record = self.oracle.profiles.lookup(mapping)
        if record is not None:
            return INFEASIBLE if record.failed else record.mean
        feasibility = self.oracle.feasibility
        if feasibility is not None and not feasibility.is_feasible(mapping):
            return INFEASIBLE
        return None

    def prefetch(self, mappings: Iterable[Mapping]) -> int:
        """Execute the batch's cache misses in worker processes and
        absorb their deterministic results into the simulator cache.

        Deduplicates within the batch, skips invalid candidates and
        candidates already known to the profiles database or the
        simulator cache, and trims to the remaining suggestion /
        evaluation budget so a speculative batch cannot run far past the
        search's end.  Returns the number of mappings executed in
        workers (0 with ``workers=1`` — the serial path computes
        lazily).  Mappings that fail with out-of-memory in a worker are
        left uncached; the replay reproduces the failure from the
        driver's own memory planner.
        """
        if self.workers <= 1:
            return 0
        simulator = self.oracle.simulator
        feasibility = self.oracle.feasibility
        budget = self._remaining_budget()
        todo: List[Mapping] = []
        seen = set()
        for mapping in mappings:
            if budget is not None and len(todo) >= budget:
                break
            if explain_invalid(simulator.graph, simulator.machine, mapping):
                continue
            # Workers simulate the canonical representative — the same
            # mapping the replay will execute — so equivalent candidates
            # collapse to one worker run and one cache entry.
            mapping = self.oracle.canonical(mapping)
            key = mapping.key()
            if key in seen:
                continue
            seen.add(key)
            if simulator.cached(mapping) is not None:
                continue
            if self.oracle.profiles.lookup(mapping) is not None:
                continue
            if feasibility is not None and not feasibility.is_feasible(mapping):
                # The replay proves the OOM statically; a worker
                # simulation would be discarded anyway.
                continue
            todo.append(mapping)
        if not todo:
            return 0

        pool = self._ensure_pool()
        # Chunked dispatch amortises IPC for cheap simulations; ~4 chunks
        # per worker keeps the tail balanced when run times vary.
        chunksize = max(1, math.ceil(len(todo) / (self.workers * 4)))
        preloaded = 0
        for mapping, result in zip(
            todo, pool.map(run_mapping, todo, chunksize=chunksize)
        ):
            if result.ok and simulator.preload(mapping, result.to_sim_result()):
                preloaded += 1
        _LOG.debug(
            kv("prefetch", submitted=len(todo), preloaded=preloaded)
        )
        return len(todo)

    def evaluate_many(
        self, mappings: Sequence[Mapping]
    ) -> List[EvalOutcome]:
        """Evaluate a batch of candidates, results identical to calling
        :meth:`evaluate` in a loop — same outcomes, same accounting, same
        trace order.  Stops once the budget is exhausted (mirroring the
        serial loops' between-candidate checks), so the returned list may
        be shorter than the input."""
        self.prefetch(mappings)
        outcomes: List[EvalOutcome] = []
        for mapping in mappings:
            if self.oracle.exhausted:
                break
            outcomes.append(self.oracle.evaluate(mapping))
        return outcomes

    # ------------------------------------------------------------------
    # Pool lifecycle
    # ------------------------------------------------------------------
    def _remaining_budget(self) -> Optional[int]:
        """Upper bound on evaluations the search can still pay for, from
        the wrapped oracle's suggestion/evaluation limits (None =
        unbounded)."""
        cfg = self.oracle.config
        bounds = []
        if cfg.max_suggestions is not None:
            bounds.append(cfg.max_suggestions - self.oracle.suggested)
        if cfg.max_evaluations is not None:
            bounds.append(cfg.max_evaluations - self.oracle.evaluated)
        if not bounds:
            return None
        return max(0, min(bounds))

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            spec = SimulatorSpec.of(self.oracle.simulator)
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers,
                initializer=init_worker,
                initargs=(spec,),
            )
            _LOG.info(kv("pool-start", workers=self.workers))
        return self._pool

    @property
    def pool_started(self) -> bool:
        """Whether worker processes were ever spawned (False for the
        ``workers=1`` fallback)."""
        return self._pool is not None

    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "BatchOracle":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
