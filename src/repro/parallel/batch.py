"""Parallel batch evaluation of candidate mappings.

:class:`BatchOracle` wraps a :class:`~repro.core.oracle.SimulationOracle`
and fans the expensive part of evaluation — the deterministic simulation
of previously-unseen valid mappings — out over a process pool, while
keeping every observable result bit-identical to the serial oracle.

The trick is a strict split between *computing* and *accounting*:

* :meth:`prefetch` runs the deterministic simulations of a batch's cache
  misses in worker processes and absorbs the results into the driver-side
  simulator's memo cache.  It touches no oracle state — no suggestion
  counters, no search clock, no trace.
* :meth:`evaluate_many` prefetches, then replays the batch through the
  wrapped oracle's ordinary :meth:`~repro.core.oracle.SimulationOracle.
  evaluate` in submission order.  Every replayed evaluation is now a pure
  cache hit plus noise draws (noise is a pure function of seed, mapping
  key, and run index), so the accounting — ``suggested``, ``evaluated``,
  ``sim_elapsed``, the §5.3 trace — advances exactly as the serial path
  would have advanced it.

With ``workers=1`` the pool is never created and every call degrades to
the serial path, so a single code path in the search layer serves both
modes.

**Worker supervision.**  Because prefetching only ever warms the cache,
every worker failure is recoverable without touching results: the batch
is supervised with a per-candidate timeout, bounded retries with
exponential backoff, a pool rebuild whenever the pool breaks (worker
crash) or a candidate hangs, and — when workers keep dying — graceful
degradation to fully serial evaluation.  A candidate whose worker never
delivered is simply computed by the driver-side replay.  Every recovery
event is counted in :class:`repro.resilience.supervisor.SupervisorStats`
and surfaced in the tuning report.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from concurrent.futures.process import BrokenProcessPool
from typing import TYPE_CHECKING, Iterable, List, Optional, Sequence

from repro.mapping.mapping import Mapping
from repro.mapping.validate import explain_invalid
from repro.parallel.spec import SimulatorSpec, WorkerResult, init_worker, run_mapping
from repro.resilience.supervisor import SupervisorStats
from repro.search.base import INFEASIBLE, EvalOutcome
from repro.util.logging import get_logger, kv

if TYPE_CHECKING:  # import cycle: repro.core.driver uses BatchOracle
    from repro.core.oracle import SimulationOracle

__all__ = ["BatchOracle"]

_LOG = get_logger("parallel.batch")

#: Batch capacity per worker: deep enough to amortise pool dispatch,
#: shallow enough that speculative batches rarely outrun the budget.
BATCH_DEPTH = 8

#: Default supervision limits: how many re-submission rounds a failed
#: batch gets, and how many pool rebuilds the run tolerates before
#: degrading to serial evaluation for good.
MAX_RETRIES = 2
MAX_POOL_REBUILDS = 3
RETRY_BACKOFF = 0.05


class BatchOracle:
    """A batching, process-parallel front-end over the serial oracle.

    Satisfies the :class:`repro.search.base.Oracle` protocol (single
    evaluations delegate to the wrapped oracle) and adds the batch API
    the search layer discovers by duck typing: ``batch_size``,
    ``prefetch``, ``evaluate_many``, and ``peek``.
    """

    def __init__(
        self,
        oracle: "SimulationOracle",
        workers: int = 1,
        batch_depth: int = BATCH_DEPTH,
        timeout: Optional[float] = None,
        max_retries: int = MAX_RETRIES,
        max_pool_rebuilds: int = MAX_POOL_REBUILDS,
        retry_backoff: float = RETRY_BACKOFF,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if timeout is not None and timeout <= 0:
            raise ValueError("timeout must be positive (or None)")
        self.oracle = oracle
        self.workers = workers
        self.batch_depth = batch_depth
        #: Per-candidate wall-clock limit for a worker result (None =
        #: wait forever).  A breach marks the pool as wedged: it is
        #: torn down (hung processes terminated) and rebuilt.
        self.timeout = timeout
        self.max_retries = max_retries
        self.max_pool_rebuilds = max_pool_rebuilds
        self.retry_backoff = retry_backoff
        # Fold recovery accounting into the oracle's metrics registry
        # (one namespace per tuning run); fakes without one get private
        # stats, same behaviour as before.
        self.stats = SupervisorStats(
            registry=getattr(oracle, "metrics", None)
        )
        self._pool: Optional[ProcessPoolExecutor] = None
        self._serial_only = False

    # ------------------------------------------------------------------
    # Oracle protocol: single-candidate path delegates untouched.
    # ------------------------------------------------------------------
    def evaluate(self, mapping: Mapping) -> EvalOutcome:
        return self.oracle.evaluate(mapping)

    @property
    def exhausted(self) -> bool:
        return self.oracle.exhausted

    def kind_runtimes(self, mapping: Mapping) -> dict:
        return self.oracle.kind_runtimes(mapping)

    def __getattr__(self, name: str):
        # Statistics, profiles, measure_more, ... — read-through to the
        # wrapped oracle so the driver can treat both interchangeably.
        # Underscore-prefixed names (including dunders the object
        # protocol probes for: __getstate__, __deepcopy__, __fspath__,
        # ...) must NOT be delegated: answering them with the wrapped
        # oracle's implementations silently corrupts pickling/copying
        # of the BatchOracle itself.
        if name.startswith("_"):
            raise AttributeError(
                f"{type(self).__name__!r} object has no attribute {name!r}"
            )
        return getattr(self.oracle, name)

    # ------------------------------------------------------------------
    # Batch API
    # ------------------------------------------------------------------
    @property
    def batch_size(self) -> int:
        """How many candidates the search layer should group per batch
        (1 = serial; algorithms fall back to one-at-a-time loops)."""
        if self.workers <= 1:
            return 1
        return self.workers * self.batch_depth

    def peek(self, mapping: Mapping) -> Optional[float]:
        """The performance this oracle *would* report for ``mapping`` if
        it is already decided — recorded profile or validity rejection —
        without consuming any budget or touching any statistic.  Returns
        None for candidates that would need an execution.  Used by
        speculative batch generation (e.g. the ensemble tuner predicting
        a generation ahead).

        Replay-pending candidates (checkpoint resume) also report None:
        the serial oracle answered None for them before the original
        run's execution, and diverging here would steer a resumed
        speculation differently from the uninterrupted run.
        """
        simulator = self.oracle.simulator
        if explain_invalid(simulator.graph, simulator.machine, mapping):
            return INFEASIBLE
        mapping = self.oracle.canonical(mapping)
        record = self.oracle.profiles.lookup(mapping)
        if record is not None:
            return INFEASIBLE if record.failed else record.mean
        if self.oracle.replay_pending(mapping):
            return None
        feasibility = self.oracle.feasibility
        if feasibility is not None and not feasibility.is_feasible(mapping):
            return INFEASIBLE
        return None

    def prefetch(self, mappings: Iterable[Mapping]) -> int:
        """Execute the batch's cache misses in worker processes and
        absorb their deterministic results into the simulator cache.

        Deduplicates within the batch, skips invalid candidates and
        candidates already known to the profiles database, the replay
        ledger, or the simulator cache, and trims to the remaining
        suggestion / evaluation budget so a speculative batch cannot run
        far past the search's end.  Returns the number of mappings
        submitted to workers (0 with ``workers=1`` or after degradation
        to serial — the serial path computes lazily).  Mappings that
        fail with out-of-memory in a worker are left uncached; the
        replay reproduces the failure from the driver's own memory
        planner.
        """
        if self.workers <= 1 or self._serial_only:
            return 0
        simulator = self.oracle.simulator
        feasibility = self.oracle.feasibility
        budget = self._remaining_budget()
        todo: List[Mapping] = []
        seen = set()
        for mapping in mappings:
            if budget is not None and len(todo) >= budget:
                break
            if explain_invalid(simulator.graph, simulator.machine, mapping):
                continue
            # Workers simulate the canonical representative — the same
            # mapping the replay will execute — so equivalent candidates
            # collapse to one worker run and one cache entry.
            mapping = self.oracle.canonical(mapping)
            key = mapping.key()
            if key in seen:
                continue
            seen.add(key)
            if simulator.cached(mapping) is not None:
                continue
            if self.oracle.profiles.lookup(mapping) is not None:
                continue
            if self.oracle.replay_pending(mapping):
                # A checkpointed evaluation replays for free — a worker
                # simulation would be discarded anyway.
                continue
            if feasibility is not None and not feasibility.is_feasible(mapping):
                # The replay proves the OOM statically; a worker
                # simulation would be discarded anyway.
                continue
            if self.oracle.would_bound_prune(mapping):
                # The replay will prune this candidate from its static
                # lower bound (the best-so-far only improves between now
                # and the replay, so the prune decision cannot flip back);
                # a worker simulation would be discarded anyway.
                continue
            todo.append(mapping)
        if not todo:
            return 0

        preloaded = 0
        for mapping, result in zip(todo, self._run_supervised(todo)):
            if (
                result is not None
                and result.ok
                and simulator.preload(mapping, result.to_sim_result())
            ):
                preloaded += 1
        _LOG.debug(kv("prefetch", submitted=len(todo), preloaded=preloaded))
        return len(todo)

    def evaluate_many(
        self, mappings: Sequence[Mapping]
    ) -> List[EvalOutcome]:
        """Evaluate a batch of candidates, results identical to calling
        :meth:`evaluate` in a loop — same outcomes, same accounting, same
        trace order.  Stops once the budget is exhausted (mirroring the
        serial loops' between-candidate checks), so the returned list may
        be shorter than the input."""
        self.prefetch(mappings)
        outcomes: List[EvalOutcome] = []
        for mapping in mappings:
            if self.oracle.exhausted:
                break
            outcomes.append(self.oracle.evaluate(mapping))
        return outcomes

    # ------------------------------------------------------------------
    # Worker supervision
    # ------------------------------------------------------------------
    def _run_supervised(
        self, todo: Sequence[Mapping]
    ) -> List[Optional[WorkerResult]]:
        """Dispatch ``todo`` to the pool under supervision.

        Guarantees: always returns a result slot per candidate (None =
        the worker never delivered — the serial replay recomputes it);
        a hung or crashed pool is torn down and rebuilt; a failing batch
        is retried with backoff up to ``max_retries`` rounds, each retry
        carrying a fresh attempt number (so the deterministic fault
        harness re-rolls its dice); persistent failure degrades the
        whole run to serial evaluation.
        """
        results: List[Optional[WorkerResult]] = [None] * len(todo)
        pending = list(range(len(todo)))
        attempt = 0
        while pending and not self._serial_only:
            try:
                pool = self._ensure_pool()
            except Exception:
                self._degrade("worker pool failed to start")
                break
            failed: List[int] = []
            pool_wedged = False
            try:
                futures = {
                    index: pool.submit(run_mapping, todo[index], attempt)
                    for index in pending
                }
            except BrokenProcessPool:
                # A worker crash from an earlier batch can mark the pool
                # broken between batches, in which case submit() raises
                # before any future exists.  Treat it like a mid-batch
                # breakage: rebuild and resubmit the whole round.
                self.stats.broken_pools += 1
                futures = {}
                failed = list(pending)
                pool_wedged = True
            for index, future in futures.items():
                if pool_wedged:
                    future.cancel()
                    failed.append(index)
                    continue
                try:
                    results[index] = future.result(timeout=self.timeout)
                except FutureTimeoutError:
                    self.stats.timeouts += 1
                    failed.append(index)
                    pool_wedged = True
                except BrokenProcessPool:
                    self.stats.broken_pools += 1
                    failed.append(index)
                    pool_wedged = True
                except Exception:
                    self.stats.worker_errors += 1
                    failed.append(index)
            if pool_wedged:
                self._rebuild_pool()
            pending = failed
            if not pending:
                break
            attempt += 1
            if attempt > self.max_retries:
                self.stats.abandoned += len(pending)
                _LOG.warning(
                    kv(
                        "retries-exhausted",
                        abandoned=len(pending),
                        attempts=attempt,
                    )
                )
                break
            self.stats.retries += 1
            time.sleep(self.retry_backoff * (2 ** (attempt - 1)))
        return results

    def _rebuild_pool(self) -> None:
        """Tear down a crashed/wedged pool (terminating any hung worker
        processes) so the next round starts from a fresh pool; degrade
        to serial once rebuilds exceed the tolerance."""
        self.stats.pool_rebuilds += 1
        self._shutdown_pool(force=True)
        _LOG.warning(kv("pool-rebuild", n=self.stats.pool_rebuilds))
        if self.stats.pool_rebuilds > self.max_pool_rebuilds:
            self._degrade(
                f"{self.stats.pool_rebuilds} pool rebuilds exceeded the "
                f"tolerance of {self.max_pool_rebuilds}"
            )

    def _degrade(self, why: str) -> None:
        """Give up on worker processes for the rest of the run; the
        serial path computes everything from here on (bit-identically —
        prefetching was only ever a cache warmer)."""
        if not self._serial_only:
            self._serial_only = True
            self.stats.serial_fallback = True
            _LOG.warning(kv("serial-fallback", reason=why))
        self._shutdown_pool(force=True)

    # ------------------------------------------------------------------
    # Pool lifecycle
    # ------------------------------------------------------------------
    def _remaining_budget(self) -> Optional[int]:
        """Upper bound on evaluations the search can still pay for, from
        the wrapped oracle's suggestion/evaluation limits (None =
        unbounded)."""
        cfg = self.oracle.config
        bounds = []
        if cfg.max_suggestions is not None:
            bounds.append(cfg.max_suggestions - self.oracle.suggested)
        if cfg.max_evaluations is not None:
            bounds.append(cfg.max_evaluations - self.oracle.evaluated)
        if not bounds:
            return None
        return max(0, min(bounds))

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            spec = SimulatorSpec.of(self.oracle.simulator)
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers,
                initializer=init_worker,
                initargs=(spec,),
            )
            _LOG.info(kv("pool-start", workers=self.workers))
        return self._pool

    def _shutdown_pool(self, force: bool = False) -> None:
        """Shut the pool down.  ``force`` handles wedged pools: futures
        are cancelled, the shutdown does not wait, and worker processes
        that survive (hung in an injected or real stall) are terminated
        so they cannot leak."""
        pool = self._pool
        if pool is None:
            return
        self._pool = None
        if not force:
            pool.shutdown(wait=True)
            return
        processes = list(getattr(pool, "_processes", {}).values())
        pool.shutdown(wait=False, cancel_futures=True)
        for process in processes:
            if process.is_alive():
                process.terminate()
        for process in processes:
            process.join(timeout=5)

    @property
    def pool_started(self) -> bool:
        """Whether worker processes were ever spawned (False for the
        ``workers=1`` fallback)."""
        return self._pool is not None

    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        self._shutdown_pool(force=False)

    def __enter__(self) -> "BatchOracle":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
