"""Process-pool batch evaluation of candidate mappings.

The search loop treats the runtime as a black-box oracle and spends
nearly all of its wall-clock time evaluating candidates; independent
candidates have no data dependencies, so they can be measured
concurrently.  This package provides:

- :class:`~repro.parallel.batch.BatchOracle` — a wrapper around
  :class:`~repro.core.oracle.SimulationOracle` that deduplicates a batch,
  consults the profiles/simulator caches, executes the misses on a
  :class:`concurrent.futures.ProcessPoolExecutor`, and then replays the
  batch through the serial accounting so results and search statistics
  are bit-identical to the serial path;
- :class:`~repro.parallel.spec.SimulatorSpec` — the picklable spec worker
  processes use to rebuild the simulator.

Search algorithms discover the batch API by duck typing (``batch_size``,
``prefetch``, ``evaluate_many``, ``peek``), so every oracle — including
test doubles — keeps working unchanged.
"""

from repro.parallel.batch import BatchOracle
from repro.parallel.spec import SimulatorSpec, WorkerResult

__all__ = ["BatchOracle", "SimulatorSpec", "WorkerResult"]
