"""The fuzz harness: run a case, check the six soundness invariants,
shrink failures, and read/write the seed corpus.

Invariants (violating any one is a bug in the repo, never in the case):

1. **bound** — every component of the static lower bound is ``<=`` the
   noise-free simulated makespan of the executed mapping.
2. **canonical** — a canonicalized mapping simulates to a bit-identical
   makespan (canonicalization only folds provably unobservable choices).
3. **relabel** — applying any verified machine automorphism to a
   mapping leaves the simulated makespan bit-equal.
4. **resume** — a tuning run killed mid-search and resumed from its
   checkpoint reports bit-identically to the uninterrupted run.
5. **parallel** — execution knobs are result-invariant: a two-worker
   parallel tune and a full (non-incremental) simulation tune both
   report bit-identically to the serial incremental run.  This is the
   contract that lets the service's result cache ignore ``workers`` /
   ``incremental`` when fingerprinting a workload
   (:mod:`repro.service.fingerprint`).
6. **equivalence** — when the AM6xx prover
   (:mod:`repro.analysis.equivalence`) declares a perturbed workload
   equivalent to the case's (capacity slack above the footprint bound,
   off-route channel parameters, a machine rename), fresh noise-free
   tunes of both report bit-identically — and the prover must accept
   the perturbations engineered to be provable.  This is the contract
   behind the service cache's near-equivalent hits.

A crash anywhere in the pipeline is reported as the pseudo-invariant
``crash`` — fuzzing exists to find those too.
"""

from __future__ import annotations

import json
import random
import tempfile
import traceback
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.bounds import StaticBoundAnalyzer
from repro.analysis.canonical import Canonicalizer
from repro.analysis.engine import analyze
from repro.analysis.symmetry import MachineSymmetry
from repro.core import AutoMapDriver, OracleConfig
from repro.fuzz.case import (
    FuzzCase,
    GEN_CHOICES,
    MACHINE_CHOICES,
    build_case,
    case_filename,
    sample_case,
)
from repro.mapping.space import SearchSpace
from repro.runtime import SimConfig, Simulator

__all__ = [
    "Violation",
    "CaseResult",
    "FuzzReport",
    "run_case",
    "shrink_case",
    "fuzz",
    "save_case",
    "load_corpus",
]

INVARIANTS = (
    "bound",
    "canonical",
    "relabel",
    "resume",
    "parallel",
    "equivalence",
)


@dataclass(frozen=True)
class Violation:
    invariant: str
    message: str


@dataclass
class CaseResult:
    case: FuzzCase
    violations: List[Violation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def violated(self) -> Set[str]:
        return {v.invariant for v in self.violations}


@dataclass
class FuzzReport:
    seed: int
    budget: int
    results: List[CaseResult] = field(default_factory=list)
    #: Shrunk reproducer per failing case, parallel to ``failures()``.
    shrunk: List[FuzzCase] = field(default_factory=list)

    def failures(self) -> List[CaseResult]:
        return [r for r in self.results if not r.ok]

    @property
    def ok(self) -> bool:
        return not self.failures()


class _KillAfter:
    """Oracle observer simulating a crash after ``limit`` evaluations."""

    def __init__(self, limit: int) -> None:
        self.limit = limit

    def __call__(self, oracle) -> None:
        if oracle.evaluated >= self.limit:
            raise KeyboardInterrupt


def _sample_mappings(
    case: FuzzCase, space: SearchSpace
) -> List:
    """The mappings the static invariants are checked on: the default
    plus ``case.mappings`` seeded random valid ones."""
    rng = random.Random(case.seed)
    out = [space.default_mapping()]
    for _ in range(case.mappings):
        out.append(space.random_mapping(rng, valid=True))
    return out


def _check_static(case: FuzzCase, graph, machine) -> List[Violation]:
    """Invariants 1-3 plus an analyze smoke pass, on a noise-free
    simulator (bounds are sound against the deterministic makespan)."""
    violations: List[Violation] = []
    analyze(graph, machine, bounds=True)  # must not crash
    space = SearchSpace(graph, machine)
    sim = Simulator(graph, machine, SimConfig(noise_sigma=0.0, spill=True))
    analyzer = StaticBoundAnalyzer(graph, machine)
    canon = Canonicalizer(graph, machine)
    relabelings = MachineSymmetry(graph, machine).automorphisms()

    for mapping in _sample_mappings(case, space):
        result = sim.run(mapping)
        makespan = result.makespan

        bd = analyzer.breakdown(result.executed_mapping)
        for component in (
            "critical_path",
            "load",
            "communication",
            "communication_incident",
            "schedule",
        ):
            value = getattr(bd, component)
            if value > makespan:
                violations.append(
                    Violation(
                        "bound",
                        f"{component}={value!r} exceeds makespan="
                        f"{makespan!r} for {mapping.key()}",
                    )
                )
        if bd.communication_incident > bd.communication:
            violations.append(
                Violation(
                    "bound",
                    "incident bound exceeds routed bound: "
                    f"{bd.communication_incident!r} > {bd.communication!r}",
                )
            )

        # A fold or relabel that makes the mapping unsimulable is a
        # violation of that invariant, not a harness crash: both are
        # contracted to stay within the runtime-equivalence class.
        try:
            folded = sim.run(canon.canonical(mapping)).makespan
        except Exception as exc:
            violations.append(
                Violation(
                    "canonical",
                    f"canonical mapping fails to simulate ({exc!r}) "
                    f"for {mapping.key()}",
                )
            )
        else:
            if folded != makespan:
                violations.append(
                    Violation(
                        "canonical",
                        f"canonical mapping simulates to {folded!r} != "
                        f"{makespan!r} for {mapping.key()}",
                    )
                )

        for rel in relabelings:
            try:
                relabeled = sim.run(rel.apply(mapping)).makespan
            except Exception as exc:
                violations.append(
                    Violation(
                        "relabel",
                        f"automorphism [{rel.describe()}] fails to "
                        f"simulate ({exc!r}) for {mapping.key()}",
                    )
                )
                continue
            if relabeled != makespan:
                violations.append(
                    Violation(
                        "relabel",
                        f"automorphism [{rel.describe()}] changes makespan "
                        f"{makespan!r} -> {relabeled!r} for {mapping.key()}",
                    )
                )
    return violations


def _driver(
    case: FuzzCase, incremental: bool = True, **kwargs
) -> AutoMapDriver:
    """A fresh driver for the case (graph and space rebuilt each time,
    mirroring a real restart-after-crash)."""
    app, graph, machine = build_case(case)
    return AutoMapDriver(
        graph,
        machine,
        algorithm=case.algorithm,
        oracle_config=OracleConfig(max_suggestions=case.max_suggestions),
        sim_config=SimConfig(
            noise_sigma=case.noise_sigma,
            seed=case.seed,
            spill=True,
            incremental=incremental,
        ),
        space=app.space(machine),
        seed=case.seed,
        **kwargs,
    )


def _report_diffs(baseline, resumed) -> List[str]:
    """Field-by-field bit-identity comparison (the
    ``assert_reports_identical`` contract, as messages)."""
    diffs: List[str] = []
    pairs = [
        ("best_mapping", baseline.best_mapping.key(), resumed.best_mapping.key()),
        ("best_mean", baseline.best_mean, resumed.best_mean),
        ("best_stddev", baseline.best_stddev, resumed.best_stddev),
        ("trace", baseline.search.trace, resumed.search.trace),
        ("suggested", baseline.suggested, resumed.suggested),
        ("evaluated", baseline.evaluated, resumed.evaluated),
        (
            "invalid_suggestions",
            baseline.invalid_suggestions,
            resumed.invalid_suggestions,
        ),
        (
            "failed_evaluations",
            baseline.failed_evaluations,
            resumed.failed_evaluations,
        ),
        ("search_seconds", baseline.search_seconds, resumed.search_seconds),
        (
            "finalists",
            [(m.key(), a, b, c) for m, a, b, c in baseline.finalists],
            [(m.key(), a, b, c) for m, a, b, c in resumed.finalists],
        ),
    ]
    for name, a, b in pairs:
        if a != b:
            diffs.append(f"{name}: baseline {a!r} != resumed {b!r}")
    return diffs


def _check_resume(case: FuzzCase, workdir: Path) -> List[Violation]:
    """Invariant 4: kill/resume reproduces the uninterrupted run."""
    from repro.resilience import load_checkpoint

    baseline = _driver(case).tune()

    path = workdir / "checkpoint.json"
    crashing = _driver(
        case,
        checkpoint_path=path,
        checkpoint_every=2,
        observers=[_KillAfter(case.kill_after)],
    )
    try:
        crashing.tune()
        # The search finished before kill_after evaluations; the
        # checkpoint then records the whole run and resume must replay
        # it idempotently — still a valid instance of the invariant.
    except KeyboardInterrupt:
        pass
    if not path.exists():
        return [
            Violation(
                "resume",
                f"no checkpoint flushed after interrupt at "
                f"{case.kill_after} evaluations",
            )
        ]

    resumed = _driver(
        case,
        checkpoint_path=path,
        checkpoint_every=2,
        resume_checkpoint=load_checkpoint(path),
    ).tune()
    return [
        Violation("resume", diff) for diff in _report_diffs(baseline, resumed)
    ]


def _check_parallel(case: FuzzCase) -> List[Violation]:
    """Invariant 5: the execution knobs the service cache ignores
    (``workers``, ``incremental``) really are result-invariant."""
    baseline = _driver(case).tune()
    violations: List[Violation] = []
    parallel = _driver(case, workers=2).tune()
    violations.extend(
        Violation("parallel", f"workers=2: {diff}")
        for diff in _report_diffs(baseline, parallel)
    )
    full = _driver(case, incremental=False).tune()
    violations.extend(
        Violation("parallel", f"incremental=False: {diff}")
        for diff in _report_diffs(baseline, full)
    )
    return violations


def _tune_on(case: FuzzCase, graph, machine, space):
    """A fresh tune of an explicit (graph, machine, space) workload —
    the equivalence invariant perturbs the machine, so ``build_case``
    cannot rebuild it."""
    return AutoMapDriver(
        graph,
        machine,
        algorithm=case.algorithm,
        oracle_config=OracleConfig(max_suggestions=case.max_suggestions),
        sim_config=SimConfig(
            noise_sigma=case.noise_sigma,
            seed=case.seed,
            spill=True,
            incremental=True,
        ),
        space=space,
        seed=case.seed,
    ).tune()


def _check_equivalence(case: FuzzCase) -> List[Violation]:
    """Invariant 6: prover-equivalent workloads tune bit-identically.

    Three machine perturbations per case, each applied through the same
    override path the service uses:

    * every memory capacity ``+1 GiB`` — engineered to be provable
      (only attempted when every capacity already covers its footprint
      bound, so the slack lemma applies on both sides);
    * an off-route channel's bandwidth tripled — *not* required to
      prove (a bandwidth change can flip weighted routing, which the
      prover detects by comparing route tables); when it does prove,
      bit-identity must hold;
    * a machine rename — engineered to be provable, with the relabel
      witness.
    """
    from repro.analysis.equivalence import (
        Workload,
        footprint_bounds,
        prove_equivalent,
        touchable_resources,
    )
    from repro.analysis.routing import channel_key
    from repro.machine.overrides import apply_machine_params
    from repro.util.units import GIB

    base = case.with_(noise_sigma=0.0)
    app, graph, machine = build_case(base)
    space = app.space(machine)
    config = {
        "algorithm": base.algorithm,
        "seed": base.seed,
        "max_suggestions": base.max_suggestions,
        "noise_sigma": base.noise_sigma,
        "spill": True,
        "static_prune": True,
        "bound_prune": True,
    }
    source = Workload(graph, machine, config, None, space)

    perturbations: List[Tuple[str, dict, bool]] = []
    bounds = footprint_bounds(graph, machine, space)
    if all(m.capacity >= bounds.get(m.uid, 0) for m in machine.memories):
        perturbations.append(
            (
                "capacity+1GiB",
                {
                    "memory_capacity": {
                        m.uid: m.capacity + GIB for m in machine.memories
                    }
                },
                True,
            )
        )
    touch = touchable_resources(graph, machine, space)
    for chan in machine.channels:
        if channel_key(chan.mem_a, chan.mem_b) not in touch.channel_keys:
            perturbations.append(
                (
                    "off-route-channel-bw*3",
                    {
                        "channel_bandwidth": {
                            f"{chan.mem_a}|{chan.mem_b}": chan.bandwidth * 3
                        }
                    },
                    False,
                )
            )
            break
    perturbations.append(
        ("rename", {"name": machine.name + "-relabeled"}, True)
    )

    violations: List[Violation] = []
    baseline = None  # tuned lazily, once per case
    for label, params, must_prove in perturbations:
        p_app, _, p_machine = build_case(base)
        p_machine = apply_machine_params(p_machine, params)
        p_graph = p_app.graph(p_machine)
        p_space = p_app.space(p_machine)
        target = Workload(p_graph, p_machine, config, None, p_space)
        proof = prove_equivalent(source, target)
        if not proof.equivalent:
            if must_prove:
                violations.append(
                    Violation(
                        "equivalence",
                        f"{label}: prover rejected engineered slack: "
                        f"{proof.witness}",
                    )
                )
            continue
        if baseline is None:
            baseline = _tune_on(base, graph, machine, space)
        perturbed = _tune_on(base, p_graph, p_machine, p_space)
        violations.extend(
            Violation(
                "equivalence", f"{label}: proved equivalent but {diff}"
            )
            for diff in _report_diffs(baseline, perturbed)
        )
    return violations


def run_case(
    case: FuzzCase,
    workdir: Optional[Path] = None,
    invariants: Sequence[str] = INVARIANTS,
) -> CaseResult:
    """Check ``case`` against the selected invariants; never raises."""
    result = CaseResult(case)
    try:
        _, graph, machine = build_case(case)
        if set(invariants) & {"bound", "canonical", "relabel"}:
            result.violations.extend(_check_static(case, graph, machine))
        if "resume" in invariants:
            if workdir is None:
                with tempfile.TemporaryDirectory() as tmp:
                    result.violations.extend(
                        _check_resume(case, Path(tmp))
                    )
            else:
                result.violations.extend(_check_resume(case, workdir))
        if "parallel" in invariants:
            result.violations.extend(_check_parallel(case))
        if "equivalence" in invariants:
            result.violations.extend(_check_equivalence(case))
    except Exception:
        result.violations.append(
            Violation(
                "crash", traceback.format_exc(limit=8).strip()
            )
        )
    return result


# ----------------------------------------------------------------------
# Shrinking
# ----------------------------------------------------------------------
def _shrink_candidates(case: FuzzCase) -> Iterable[FuzzCase]:
    """Structurally smaller variants, most aggressive first.  Every
    candidate is valid by construction (values come from the sampler's
    own pools, or drop back to the app default)."""
    # Drop or step down each generator knob.
    pools = GEN_CHOICES.get(case.generator, {})
    for knob in sorted(case.gen_params):
        params = dict(case.gen_params)
        del params[knob]
        yield case.with_(gen_params=params)
        pool = [v for v in pools.get(knob, ()) if v is not None]
        smaller = [v for v in pool if v < case.gen_params[knob]]
        if smaller:
            params = dict(case.gen_params)
            params[knob] = max(smaller)
            yield case.with_(gen_params=params)
    # Smaller machine of the same shape.
    for name, sizes in MACHINE_CHOICES:
        if name == case.machine:
            smaller = [s for s in sizes if s < case.machine_arg]
            if smaller:
                yield case.with_(machine_arg=max(smaller))
    # Cheaper search configuration.
    if case.mappings > 1:
        yield case.with_(mappings=case.mappings // 2)
    if case.max_suggestions > 6:
        yield case.with_(max_suggestions=max(6, case.max_suggestions // 2))
    if case.kill_after > 2:
        yield case.with_(kill_after=2)
    if case.noise_sigma != 0.0:
        yield case.with_(noise_sigma=0.0)
    if case.algorithm != "ccd":
        yield case.with_(algorithm="ccd")


def shrink_case(
    case: FuzzCase,
    failing: Set[str],
    check: Optional[Callable[[FuzzCase], Set[str]]] = None,
    max_steps: int = 64,
) -> FuzzCase:
    """Greedily minimise ``case`` while it still violates at least one
    of the ``failing`` invariants.  ``check`` maps a candidate to its
    violated-invariant set (defaults to :func:`run_case`)."""
    if check is None:
        check = lambda c: run_case(c).violated()  # noqa: E731
    current = case
    for _ in range(max_steps):
        for candidate in _shrink_candidates(current):
            if check(candidate) & failing:
                current = candidate
                break
        else:
            return current
    return current


# ----------------------------------------------------------------------
# Corpus
# ----------------------------------------------------------------------
def save_case(
    case: FuzzCase, directory: Path, invariant: Optional[str] = None
) -> Path:
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / case_filename(case, invariant)
    path.write_text(json.dumps(case.to_doc(), indent=2, sort_keys=True) + "\n")
    return path


def load_corpus(directory: Path) -> List[Tuple[Path, FuzzCase]]:
    """Every ``*.json`` fuzz case under ``directory``, sorted by name."""
    out: List[Tuple[Path, FuzzCase]] = []
    for path in sorted(Path(directory).glob("*.json")):
        out.append((path, FuzzCase.from_doc(json.loads(path.read_text()))))
    return out


# ----------------------------------------------------------------------
# The fuzz loop
# ----------------------------------------------------------------------
def fuzz(
    seed: int,
    budget: int,
    invariants: Sequence[str] = INVARIANTS,
    shrink: bool = True,
    on_case: Optional[Callable[[int, CaseResult], None]] = None,
) -> FuzzReport:
    """Run ``budget`` seeded random cases.  Case ``i`` is a pure
    function of ``(seed, i)``, so any reported failure replays exactly
    from its index alone."""
    report = FuzzReport(seed=seed, budget=budget)
    for i in range(budget):
        case = sample_case(random.Random(f"{seed}:{i}"))
        result = run_case(case, invariants=invariants)
        report.results.append(result)
        if not result.ok and shrink:
            report.shrunk.append(
                shrink_case(
                    case,
                    result.violated(),
                    check=lambda c: run_case(c, invariants=invariants).violated(),
                )
            )
        if on_case is not None:
            on_case(i, result)
    return report
