"""Fuzz cases: seeded random (generator, machine, search-config) triples.

A :class:`FuzzCase` is a fully serialisable description of one
soundness trial — which generator family with which knobs, which zoo
machine at which size, and which search configuration.  Sampling is a
pure function of an explicit :class:`random.Random`, so a (seed, index)
pair always reproduces the same case, shrunk cases replay from their
JSON form, and the committed seed corpus doubles as a regression suite.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Dict, Optional, Tuple

from repro.apps import make_app
from repro.apps.base import App
from repro.machine.builders import MACHINE_ZOO
from repro.machine.model import Machine
from repro.taskgraph.graph import TaskGraph

__all__ = ["FuzzCase", "sample_case", "build_case"]

_FORMAT = "automap-fuzz-case-v1"

#: Machines the sampler draws from: zoo name -> size options.  Sizes
#: stay small so a single case simulates in well under a second.
MACHINE_CHOICES: Tuple[Tuple[str, Tuple[int, ...]], ...] = (
    ("mirrored", (1, 2)),
    ("lopsided", (1, 2)),
    ("helix", (1, 2, 3, 6)),
    ("shepard", (1, 2)),
    ("lassen", (1,)),
)

#: Generator knob pools, per family.  ``None`` keeps the app default.
GEN_CHOICES: Dict[str, Dict[str, Tuple]] = {
    "forkjoin": {
        "width": (None, 1, 2, 4, 8),
        "elems": (4096, 1 << 16),
        "iterations": (1, 2, 3),
    },
    "halo": {
        "parts": (None, 1, 2, 4),
        "elems": (4096, 1 << 16),
        "halo": (1, 64, 1024),
        "iterations": (1, 2),
    },
    "pipeline": {
        "parts": (None, 1, 2),
        "layers": (1, 2, 3, 4, 6),
        "hidden": (1024, 1 << 14),
        "iterations": (1, 2),
    },
    "reduction": {
        "parts": (None, 1, 2),
        "levels": (1, 2, 3, 4),
        "fanout": (2, 4, 8),
        "elems": (4096, 1 << 16),
        "iterations": (1, 2),
    },
}

ALGORITHMS = ("ccd", "cd", "random", "opentuner")


@dataclass(frozen=True)
class FuzzCase:
    """One reproducible soundness trial."""

    generator: str
    gen_params: Dict[str, object] = field(default_factory=dict)
    machine: str = "shepard"
    machine_arg: int = 1
    algorithm: str = "ccd"
    seed: int = 0
    noise_sigma: float = 0.02
    #: Search budget for the kill/resume invariant.
    max_suggestions: int = 24
    #: Evaluations before the simulated crash.
    kill_after: int = 3
    #: Random mappings checked by the static invariants.
    mappings: int = 4
    #: Free-form provenance (who found it, what it pins).
    note: str = ""

    # ------------------------------------------------------------------
    def label(self) -> str:
        params = ",".join(
            f"{k}={v}" for k, v in sorted(self.gen_params.items())
        )
        return (
            f"{self.generator}({params}) on "
            f"{self.machine}({self.machine_arg}) "
            f"{self.algorithm}/seed={self.seed}"
        )

    def to_doc(self) -> dict:
        return {
            "format": _FORMAT,
            "generator": self.generator,
            "gen_params": dict(self.gen_params),
            "machine": self.machine,
            "machine_arg": self.machine_arg,
            "algorithm": self.algorithm,
            "seed": self.seed,
            "noise_sigma": self.noise_sigma,
            "max_suggestions": self.max_suggestions,
            "kill_after": self.kill_after,
            "mappings": self.mappings,
            "note": self.note,
        }

    @staticmethod
    def from_doc(doc: dict) -> "FuzzCase":
        if doc.get("format") != _FORMAT:
            raise ValueError(
                f"not a fuzz-case document (format={doc.get('format')!r})"
            )
        return FuzzCase(
            generator=doc["generator"],
            gen_params=dict(doc.get("gen_params", {})),
            machine=doc["machine"],
            machine_arg=int(doc["machine_arg"]),
            algorithm=doc.get("algorithm", "ccd"),
            seed=int(doc.get("seed", 0)),
            noise_sigma=float(doc.get("noise_sigma", 0.02)),
            max_suggestions=int(doc.get("max_suggestions", 24)),
            kill_after=int(doc.get("kill_after", 3)),
            mappings=int(doc.get("mappings", 4)),
            note=doc.get("note", ""),
        )

    def with_(self, **changes) -> "FuzzCase":
        return replace(self, **changes)


def sample_case(rng: random.Random) -> FuzzCase:
    """Draw one case; a pure function of ``rng``'s state."""
    generator = rng.choice(sorted(GEN_CHOICES))
    params: Dict[str, object] = {}
    for knob, pool in sorted(GEN_CHOICES[generator].items()):
        value = rng.choice(pool)
        if value is not None:
            params[knob] = value
    machine, sizes = MACHINE_CHOICES[rng.randrange(len(MACHINE_CHOICES))]
    return FuzzCase(
        generator=generator,
        gen_params=params,
        machine=machine,
        machine_arg=rng.choice(sizes),
        algorithm=rng.choice(ALGORITHMS),
        seed=rng.randrange(1 << 16),
        noise_sigma=rng.choice((0.0, 0.02, 0.04)),
        max_suggestions=rng.choice((12, 24, 40)),
        kill_after=rng.choice((2, 3, 5)),
        mappings=rng.choice((3, 4, 6)),
    )


def build_case(case: FuzzCase) -> Tuple[App, TaskGraph, Machine]:
    """Materialise the case's app, graph, and machine (raises
    ``ValueError`` for unknown names/knobs — a sampler or corpus bug)."""
    try:
        factory = MACHINE_ZOO[case.machine]
    except KeyError:
        raise ValueError(
            f"unknown zoo machine {case.machine!r}; "
            f"choose from {sorted(MACHINE_ZOO)}"
        ) from None
    machine = factory(case.machine_arg)
    app = make_app(case.generator, **case.gen_params)
    return app, app.graph(machine), machine


def case_filename(case: FuzzCase, invariant: Optional[str] = None) -> str:
    """A stable, content-derived corpus filename."""
    import hashlib
    import json

    digest = hashlib.sha256(
        json.dumps(case.to_doc(), sort_keys=True).encode()
    ).hexdigest()[:12]
    middle = f"{invariant}-" if invariant else ""
    return f"case-{middle}{case.generator}-{digest}.json"
