"""Soundness fuzzing: seeded random (generator, machine, search-config)
triples checked against the pipeline's five invariants.

The paper's search treats the simulator as ground truth, so the pieces
that *reason about* simulations — static lower bounds, equivalence
canonicalization, machine-symmetry folding, checkpoint/resume, and the
execution-mode identities (parallel workers, incremental simulation)
the service's result cache relies on — must never disagree with it.  :mod:`repro.fuzz` stress-tests exactly
those contracts over the synthetic generator families
(:mod:`repro.generators`) and the machine zoo
(:mod:`repro.machine.builders`), shrinks any failure to a minimal
reproducer, and persists it to a corpus replayed as regression tests
(``tests/property/corpus/``).

Entry points: ``repro fuzz`` on the command line, :func:`fuzz` and
:func:`run_case` from code.
"""

from __future__ import annotations

from repro.fuzz.case import FuzzCase, build_case, sample_case
from repro.fuzz.harness import (
    INVARIANTS,
    CaseResult,
    FuzzReport,
    Violation,
    fuzz,
    load_corpus,
    run_case,
    save_case,
    shrink_case,
)

__all__ = [
    "INVARIANTS",
    "FuzzCase",
    "CaseResult",
    "FuzzReport",
    "Violation",
    "build_case",
    "sample_case",
    "run_case",
    "shrink_case",
    "fuzz",
    "save_case",
    "load_corpus",
]
