"""Circuit: electrical circuit simulation (paper Figure 5 row 1).

The Legion Circuit benchmark [Bauer et al., SC '12] simulates an RLC
network partitioned into *pieces*; node data is split into private,
shared, and ghost regions (the ghost regions of a piece overlap the
shared regions of its neighbours).  Three task kinds per iteration:

* ``calc_new_currents`` — per-wire dense RLC solve (compute-heavy,
  GPU-friendly);
* ``distribute_charge`` — scatter charge to endpoint nodes (atomics,
  poor GPU efficiency);
* ``update_voltages`` — per-node voltage integration.

Inputs are labelled ``n{nodes}w{wires}`` — total circuit nodes and wires,
matching the paper's weak-scaled labels (Figure 6a doubles the input
with the machine-node count).

The custom mapper follows the published strategy: everything on GPUs,
but the *shared/ghost node data in Zero-Copy memory* so cross-piece
updates avoid frame-buffer round trips.  That wins on multiple nodes and
mid sizes and loses at large single-node sizes (Zero-Copy's low GPU
bandwidth), the behaviour visible in Figure 6a.
"""

from __future__ import annotations

from typing import Sequence

from repro.apps.base import App, KindSpec, RootSpec, SlotSpec
from repro.machine.kinds import MemKind
from repro.machine.model import Machine
from repro.mapping.mapping import Mapping
from repro.taskgraph.task import Privilege, ShardPattern

__all__ = ["CircuitApp"]

# Per-element state sizes (bytes), mirroring the Legion code's fields.
NODE_FIELDS_BYTES = 8  # voltage
CHARGE_BYTES = 8
CAP_BYTES = 8
WIRE_BYTES = 64  # endpoints, R/L/C, piece ids
CURRENT_BYTES = 24  # 3 current samples along the wire

#: Fraction of a piece's nodes that are shared with neighbours.
GHOST_FRAC = 0.05

#: Calibrated relative task costs (flops per element of the work root).
#: CNC runs an iterative dense RLC solve per wire (many Newton/RK
#: sub-steps — see repro.kernels.circuit_kernels for the single-step
#: reference numerics), so its per-wire constant is large; DC is a
#: scatter pass and UV a cheap per-node integration.
CNC_FLOPS_PER_WIRE = 2.0e4
DC_FLOPS_PER_WIRE = 8.0e3
UV_FLOPS_PER_NODE = 256.0


class CircuitApp(App):
    """Circuit with ``nodes`` circuit nodes and ``wires`` wires total."""

    name = "circuit"

    def __init__(
        self,
        nodes: int = 1600,
        wires: int = 6400,
        pieces_per_gpu: int = 2,
        iterations: int = 2,
    ) -> None:
        if nodes < 1 or wires < 1:
            raise ValueError("nodes and wires must be positive")
        self.nodes = nodes
        self.wires = wires
        self.parts_per_gpu = pieces_per_gpu
        self.iterations = iterations

    def input_label(self) -> str:
        return f"n{self.nodes}w{self.wires}"

    # ------------------------------------------------------------------
    def roots(self) -> Sequence[RootSpec]:
        nodes = self.nodes
        wires = self.wires
        return [
            RootSpec("voltages", nodes, NODE_FIELDS_BYTES),
            RootSpec("charges", nodes, CHARGE_BYTES),
            RootSpec("caps", nodes, CAP_BYTES),
            RootSpec("wires", wires, WIRE_BYTES),
            RootSpec("currents", wires, CURRENT_BYTES),
            RootSpec("params", 512, 8),
        ]

    def kinds(self) -> Sequence[KindSpec]:
        R, W, RW = Privilege.READ, Privilege.WRITE, Privilege.READ_WRITE
        B, BH = ShardPattern.BLOCK, ShardPattern.BLOCK_HALO
        LO, HI = ShardPattern.STRIP_LO_OUT, ShardPattern.STRIP_HI_OUT
        return [
            KindSpec(
                "calc_new_currents",
                slots=(
                    SlotSpec("wires", "wires", R, B),
                    SlotSpec("currents", "currents", RW, B),
                    SlotSpec("v_pvt", "voltages", R, B),
                    SlotSpec("v_ghost_lo", "voltages", R, LO, GHOST_FRAC),
                    SlotSpec("v_ghost_hi", "voltages", R, HI, GHOST_FRAC),
                ),
                flops_per_elem=CNC_FLOPS_PER_WIRE,
                work_root="wires",
                gpu_speedup=1.0,
            ),
            KindSpec(
                "distribute_charge",
                slots=(
                    SlotSpec("wires", "wires", R, B),
                    SlotSpec("currents", "currents", R, B),
                    SlotSpec("q_pvt", "charges", RW, B),
                    SlotSpec("q_ghost_lo", "charges", RW, LO, GHOST_FRAC),
                    SlotSpec("q_ghost_hi", "charges", RW, HI, GHOST_FRAC),
                ),
                flops_per_elem=DC_FLOPS_PER_WIRE,
                work_root="wires",
                gpu_speedup=0.5,  # scatter-adds (atomics) on GPU
            ),
            KindSpec(
                "update_voltages",
                slots=(
                    SlotSpec("v_pvt", "voltages", RW, B),
                    SlotSpec("q_pvt", "charges", RW, B),
                    SlotSpec("caps", "caps", R, B),
                    SlotSpec("params", "params", R, ShardPattern.REPLICATED),
                    SlotSpec(
                        "v_bound", "voltages", W, ShardPattern.STRIP_LO_IN,
                        GHOST_FRAC,
                    ),
                ),
                flops_per_elem=UV_FLOPS_PER_NODE,
                work_root="voltages",
                gpu_speedup=1.0,
            ),
        ]

    # ------------------------------------------------------------------
    def custom_mapping(self, machine: Machine) -> Mapping:
        """Published strategy: GPUs everywhere, shared/ghost node data in
        Zero-Copy memory."""
        mapping = self.default_mapping(machine)
        zc = MemKind.ZERO_COPY
        mapping = self._decide(
            mapping,
            "calc_new_currents",
            mems={"v_ghost_lo": zc, "v_ghost_hi": zc},
        )
        mapping = self._decide(
            mapping,
            "distribute_charge",
            mems={"q_ghost_lo": zc, "q_ghost_hi": zc},
        )
        mapping = self._decide(mapping, "update_voltages", mems={"v_bound": zc})
        return mapping
