"""The five benchmark applications (paper Figure 5).

Each application is a task-graph generator: given a machine, it emits the
dependence graph of a few iterations of the real code's main loop, with
task-kind inventories, collection-argument structure, data sizes, and
relative task costs modelled on the published applications:

- :class:`~repro.apps.circuit.CircuitApp` — electrical circuit simulation
  (3 task kinds, 15 collection arguments);
- :class:`~repro.apps.stencil.StencilApp` — 2D structured stencil (PRK;
  2 kinds, 12 arguments);
- :class:`~repro.apps.pennant.PennantApp` — Lagrangian hydrodynamics
  (31 kinds, 97 arguments);
- :class:`~repro.apps.htr.HTRApp` — multi-physics hypersonic solver
  (28 kinds, 72 arguments);
- :class:`~repro.apps.maestro.MaestroApp` — multi-fidelity ensemble CFD
  (13 searched LF kinds, 30 arguments; HF mapping fixed).

Every app also provides the two baselines of §5: the runtime's *default
mapping* (all GPU, all Frame-Buffer, spill on overflow) and the
application's *custom mapper* (the hand-written strategies the paper
describes).
"""

from repro.apps.base import App, KindSpec, RootSpec, SlotSpec
from repro.apps.circuit import CircuitApp
from repro.apps.stencil import StencilApp
from repro.apps.pennant import PennantApp
from repro.apps.htr import HTRApp
from repro.apps.maestro import MaestroApp
from repro.apps.registry import APP_REGISTRY, make_app

__all__ = [
    "App",
    "RootSpec",
    "SlotSpec",
    "KindSpec",
    "CircuitApp",
    "StencilApp",
    "PennantApp",
    "HTRApp",
    "MaestroApp",
    "APP_REGISTRY",
    "make_app",
]
