"""Application registry: construct benchmark apps by name.

Holds the five paper applications plus the synthetic generator
families from :mod:`repro.generators` — both sides are plain
:class:`~repro.apps.base.App` subclasses, so everything downstream
(tune, analyze, fuzz) treats them uniformly.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.apps.base import App
from repro.apps.circuit import CircuitApp
from repro.apps.htr import HTRApp
from repro.apps.maestro import MaestroApp
from repro.apps.pennant import PennantApp
from repro.apps.stencil import StencilApp
from repro.generators import GENERATOR_FAMILIES

__all__ = ["APP_REGISTRY", "make_app"]

#: Name -> constructor for the five benchmark applications and the
#: synthetic generator families.
APP_REGISTRY: Dict[str, Callable[..., App]] = {
    "circuit": CircuitApp,
    "stencil": StencilApp,
    "pennant": PennantApp,
    "htr": HTRApp,
    "maestro": MaestroApp,
    **GENERATOR_FAMILIES,
}


def make_app(name: str, **kwargs) -> App:
    """Construct a benchmark application by name.

    >>> make_app("stencil", nx=500, ny=500).input_label()
    '500x500'
    """
    try:
        factory = APP_REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown application {name!r}; choose from {sorted(APP_REGISTRY)}"
        ) from None
    return factory(**kwargs)
