"""Pennant: Lagrangian hydrodynamics (paper Figure 5 row 3).

PENNANT [Ferenbaugh, CCPE '14] computes staggered-grid compressible
hydrodynamics on an unstructured mesh of zones, points, sides, and
corners, with a predictor-corrector main loop of ~31 small task kinds —
the paper's most decision-rich application (31 tasks, 97 collection
arguments, search space ~2^128).

The kind inventory below follows PENNANT's hydro driver: position
advection, geometry (centers/volumes/surface vectors), state (density,
EOS, TTS), the QCS artificial-viscosity pipeline, force accumulation,
acceleration, the corrector pass, work/energy updates, and the dt
reductions.  Point and corner arrays are shared between neighbouring
mesh pieces (``BLOCK_HALO`` patterns), producing the overlap structure
CCD's co-location constraints act on.

Inputs are labelled ``{zx}x{zy}`` (zones in each direction), matching
Figures 6c/8/9.  All kinds are bandwidth-bound with modest arithmetic
intensity and gather/scatter-heavy inner loops (``gpu_speedup`` < 1),
calibrated against :mod:`repro.kernels.hydro` — this is why small
Pennant inputs run best with many kinds on the CPU (Figure 6c).
"""

from __future__ import annotations

from typing import Sequence

from repro.apps.base import App, KindSpec, RootSpec, SlotSpec
from repro.machine.kinds import MemKind, ProcKind
from repro.machine.model import Machine
from repro.mapping.mapping import Mapping
from repro.taskgraph.task import Privilege, ShardPattern

__all__ = ["PennantApp"]

R, W, RW = Privilege.READ, Privilege.WRITE, Privilege.READ_WRITE
B, BH, REPL = (
    ShardPattern.BLOCK,
    ShardPattern.BLOCK_HALO,
    ShardPattern.REPLICATED,
)

#: Point/corner data shared across piece boundaries: halo fraction of a
#: piece's share (PENNANT meshes have O(sqrt) boundary, a few percent).
HALO = 0.04

# Per-mesh-entity multiplicities relative to the zone count.
POINTS_PER_ZONE = 1.05
SIDES_PER_ZONE = 4.0
CORNERS_PER_ZONE = 4.0

#: 2D vector fields (positions, velocities, forces) are 16 bytes/elem.
VEC = 16


def _slot(name, root, priv=R, pattern=B, halo=0.0) -> SlotSpec:
    return SlotSpec(name, root, priv, pattern, halo)


class PennantApp(App):
    """PENNANT on a ``zx × zy`` zone mesh."""

    name = "pennant"

    def __init__(
        self, zx: int = 320, zy: int = 360, iterations: int = 2
    ) -> None:
        if zx < 1 or zy < 1:
            raise ValueError("zone counts must be positive")
        self.zx = zx
        self.zy = zy
        self.iterations = iterations

    def input_label(self) -> str:
        return f"{self.zx}x{self.zy}"

    # ------------------------------------------------------------------
    def roots(self) -> Sequence[RootSpec]:
        nz = self.zx * self.zy
        np_ = int(nz * POINTS_PER_ZONE)
        ns = int(nz * SIDES_PER_ZONE)
        nc = int(nz * CORNERS_PER_ZONE)
        zone8 = lambda name: RootSpec(name, nz, 8)  # noqa: E731
        return [
            # Point arrays (2D vectors).
            RootSpec("px0", np_, VEC),
            RootSpec("pu0", np_, VEC),
            RootSpec("pxp", np_, VEC),
            RootSpec("px", np_, VEC),
            RootSpec("pu", np_, VEC),
            RootSpec("pap", np_, VEC),
            RootSpec("pmaswt", np_, 8),
            # Zone arrays.
            zone8("zx"),
            zone8("zxp"),
            zone8("zvol"),
            zone8("zvolp"),
            zone8("zarea"),
            zone8("zdl"),
            zone8("zm"),
            zone8("zr"),
            zone8("ze"),
            zone8("zp"),
            zone8("zss"),
            zone8("zuc"),
            zone8("zdu"),
            zone8("zw"),
            zone8("zwrate"),
            # Side / corner arrays.
            RootSpec("sx", int(nz * SIDES_PER_ZONE), VEC),
            RootSpec("sxp", ns, VEC),
            RootSpec("ssurf", ns, VEC),
            RootSpec("selen", ns, 8),
            RootSpec("smf", ns, 8),
            RootSpec("sfp", ns, VEC),
            RootSpec("sft", ns, VEC),
            RootSpec("sfq", ns, VEC),
            RootSpec("cdu", nc, 8),
            RootSpec("cqe", nc, VEC),
            RootSpec("cftot", nc, VEC),
            RootSpec("cmaswt", nc, 8),
            # Reductions / scalars.
            RootSpec("dtrec", 64, 8),
            RootSpec("dt", 8, 8),
            RootSpec("bcs", 128, 8),
        ]

    def kinds(self) -> Sequence[KindSpec]:
        def kind(name, slots, flops, work, gpu=0.6) -> KindSpec:
            return KindSpec(
                name,
                slots=tuple(slots),
                flops_per_elem=flops,
                work_root=work,
                gpu_speedup=gpu,
            )

        return [
            # --- predictor: advance positions to the half step --------
            kind("adv_pos_half", [
                _slot("px0", "px0"), _slot("pu0", "pu0"),
                _slot("pxp", "pxp", RW, BH, HALO),
                _slot("dt", "dt", R, REPL),
            ], 8, "px0", gpu=0.9),
            kind("calc_ctrs", [
                _slot("pxp", "pxp", R, BH, HALO),
                _slot("zx", "zx", RW), _slot("sx", "sx", RW),
            ], 14, "zx", gpu=0.5),
            kind("calc_vols", [
                _slot("pxp", "pxp", R, BH, HALO),
                _slot("zvol", "zvol", RW),
                _slot("zarea", "zarea", RW),
            ], 16, "zvol", gpu=0.5),
            kind("calc_surf_vecs", [
                _slot("zx", "zx"), _slot("pxp", "pxp", R, BH, HALO),
                _slot("ssurf", "ssurf", RW),
            ], 8, "ssurf", gpu=0.7),
            kind("calc_edge_len", [
                _slot("pxp", "pxp", R, BH, HALO),
                _slot("selen", "selen", RW),
            ], 8, "selen", gpu=0.7),
            kind("calc_char_len", [
                _slot("zarea", "zarea"), _slot("selen", "selen"),
                _slot("zdl", "zdl", RW),
            ], 6, "zdl", gpu=0.6),
            kind("calc_rho_half", [
                _slot("zm", "zm"), _slot("zvol", "zvol"),
                _slot("zr", "zr", RW),
            ], 3, "zr", gpu=0.9),
            kind("calc_crnr_mass", [
                _slot("zr", "zr"), _slot("zarea", "zarea"),
                _slot("smf", "smf"),
                _slot("cmaswt", "cmaswt", RW, BH, HALO),
            ], 10, "cmaswt", gpu=0.4),
            kind("calc_state_gas", [
                _slot("zr", "zr"), _slot("ze", "ze"),
                _slot("zp", "zp", RW), _slot("zss", "zss", RW),
            ], 20, "zp", gpu=0.9),
            kind("calc_force_pgas", [
                _slot("zp", "zp"), _slot("ssurf", "ssurf"),
                _slot("sfp", "sfp", RW),
            ], 6, "sfp", gpu=0.8),
            kind("calc_force_tts", [
                _slot("zr", "zr"), _slot("zss", "zss"),
                _slot("ssurf", "ssurf"), _slot("sft", "sft", RW),
            ], 10, "sft", gpu=0.8),
            # --- QCS artificial viscosity pipeline --------------------
            kind("qcs_zone_center_vel", [
                _slot("pu0", "pu0", R, BH, HALO),
                _slot("zuc", "zuc", RW),
            ], 8, "zuc", gpu=0.5),
            kind("qcs_corner_div", [
                _slot("pu0", "pu0", R, BH, HALO),
                _slot("zuc", "zuc"), _slot("cdu", "cdu", RW),
            ], 22, "cdu", gpu=0.4),
            kind("qcs_qcn_force", [
                _slot("cdu", "cdu"), _slot("zss", "zss"),
                _slot("zr", "zr"), _slot("cqe", "cqe", RW),
            ], 18, "cqe", gpu=0.5),
            kind("qcs_force", [
                _slot("cqe", "cqe"), _slot("selen", "selen"),
                _slot("sfq", "sfq", RW),
            ], 8, "sfq", gpu=0.6),
            kind("qcs_vel_diff", [
                _slot("pu0", "pu0", R, BH, HALO),
                _slot("zdu", "zdu", RW),
            ], 10, "zdu", gpu=0.5),
            # --- force gather and acceleration ------------------------
            kind("sum_crnr_force", [
                _slot("sfp", "sfp"), _slot("sft", "sft"),
                _slot("sfq", "sfq"),
                _slot("cftot", "cftot", RW, BH, HALO),
            ], 8, "cftot", gpu=0.4),
            kind("calc_accel", [
                _slot("cftot", "cftot", R, BH, HALO),
                _slot("pmaswt", "pmaswt", R, BH, HALO),
                _slot("pap", "pap", RW),
            ], 4, "pap", gpu=0.6),
            # --- corrector: full-step advance --------------------------
            kind("adv_pos_full", [
                _slot("pu0", "pu0"), _slot("pap", "pap"),
                _slot("dt", "dt", R, REPL),
                _slot("px", "px", RW, BH, HALO),
                _slot("pu", "pu", RW, BH, HALO),
            ], 10, "px", gpu=0.9),
            kind("calc_ctrs_full", [
                _slot("px", "px", R, BH, HALO),
                _slot("zxp", "zxp", RW), _slot("sxp", "sxp", RW),
            ], 14, "zxp", gpu=0.5),
            kind("calc_vols_full", [
                _slot("px", "px", R, BH, HALO),
                _slot("zxp", "zxp"), _slot("zvolp", "zvolp", RW),
            ], 16, "zvolp", gpu=0.5),
            kind("calc_work", [
                _slot("sfp", "sfp"), _slot("sfq", "sfq"),
                _slot("pu", "pu", R, BH, HALO),
                _slot("zw", "zw", RW),
            ], 24, "zw", gpu=0.5),
            kind("calc_work_rate", [
                _slot("zvol", "zvol"), _slot("zvolp", "zvolp"),
                _slot("zwrate", "zwrate", RW),
                _slot("dt", "dt", R, REPL),
            ], 6, "zwrate", gpu=0.8),
            kind("calc_energy", [
                _slot("zw", "zw"), _slot("zm", "zm"),
                _slot("ze", "ze", RW),
            ], 4, "ze", gpu=0.9),
            kind("calc_rho_full", [
                _slot("zm", "zm"), _slot("zvolp", "zvolp"),
                _slot("zr", "zr", RW),
            ], 3, "zr", gpu=0.9),
            # --- dt reductions -----------------------------------------
            kind("calc_dt_courant", [
                _slot("zdl", "zdl"), _slot("zss", "zss"),
                _slot("dtrec", "dtrec", RW),
            ], 6, "zdl", gpu=0.6),
            kind("calc_dt_volume", [
                _slot("zvol", "zvol"), _slot("zvolp", "zvolp"),
                _slot("dtrec", "dtrec", RW),
            ], 4, "zvol", gpu=0.6),
            kind("calc_dt_hydro", [
                _slot("dtrec", "dtrec"),
                _slot("dt", "dt", RW, REPL),
            ], 2, "dtrec", gpu=0.3),
            # --- per-iteration housekeeping -----------------------------
            kind("reset_corners", [
                _slot("cftot", "cftot", W),
                _slot("cmaswt", "cmaswt", W),
            ], 1, "cftot", gpu=0.8),
            kind("sum_point_mass", [
                _slot("cmaswt", "cmaswt", R, BH, HALO),
                _slot("pmaswt", "pmaswt", RW, BH, HALO),
            ], 6, "pmaswt", gpu=0.4),
            kind("apply_bcs", [
                _slot("px", "px", RW, BH, HALO),
                _slot("pu", "pu", RW, BH, HALO),
                _slot("bcs", "bcs", R, REPL),
            ], 2, "px", gpu=0.4),
        ]

    # ------------------------------------------------------------------
    def custom_mapping(self, machine: Machine) -> Mapping:
        """Published strategy: GPUs everywhere like the default, but the
        dt-reduction data in Zero-Copy memory (the host consumes the
        reduced timestep every iteration) and the tiny reduction kind on
        the CPU."""
        mapping = self.default_mapping(machine)
        zc = MemKind.ZERO_COPY
        mapping = self._decide(
            mapping, "calc_dt_courant", mems={"dtrec": zc}
        )
        mapping = self._decide(
            mapping, "calc_dt_volume", mems={"dtrec": zc}
        )
        mapping = self._decide(
            mapping,
            "calc_dt_hydro",
            proc=ProcKind.CPU,
            mems={"dtrec": zc, "dt": zc},
        )
        return mapping
