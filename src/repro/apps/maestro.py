"""Maestro: multi-fidelity ensemble CFD (paper Figure 5 row 5, §5.1).

Maestro runs a bi-fidelity ensemble of compressible Navier–Stokes
simulations: one expensive *high-fidelity* (HF) sample plus many cheap
*low-fidelity* (LF) samples on coarser grids.  The HF mapping is fixed by
the developers — GPUs, collection arguments filling the Frame-Buffer —
and the goal is to place the LF ensemble so it impacts the HF run as
little as possible.  AutoMap therefore searches only the 13 LF task
kinds (30 collection arguments), minimising the HF finish time
(:meth:`MaestroApp.hf_metric`) rather than total makespan.

LF work is grouped across ensemble members: each LF launch has one point
task per sample, so the distribution flag spreads samples over nodes and
the processor choice pits "LF on GPUs + Zero-Copy" against "LF on CPUs +
System memory" — the two standard strategies of Figure 7.  A small
CPU-only HF statistics kind models the runtime/analysis work every HF
step performs on the host, which is what LF-on-CPU placements can
disturb.
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.apps.base import App, KindSpec, RootSpec, SlotSpec
from repro.machine.kinds import MemKind, ProcKind
from repro.machine.model import Machine
from repro.mapping.decision import MappingDecision
from repro.mapping.mapping import Mapping
from repro.mapping.space import SearchSpace
from repro.runtime.executor import ExecutionReport
from repro.taskgraph.task import Privilege, ShardPattern

__all__ = ["MaestroApp"]

R, W, RW = Privilege.READ, Privilege.WRITE, Privilege.READ_WRITE
B, REPL = ShardPattern.BLOCK, ShardPattern.REPLICATED

#: Single-component compressible NS: bytes per cell per field group.
U_BYTES = 40  # 5 conserved variables
Q_BYTES = 48  # 6 primitive variables
FLUX_BYTES = 40

#: Task kinds belonging to the high-fidelity simulation (mapping fixed).
HF_KINDS = ("hf_flux", "hf_update", "hf_primitive", "hf_stats")


class MaestroApp(App):
    """Bi-fidelity ensemble: one HF sample plus ``lf_count`` LF samples
    of resolution ``lf_res``³ (HF at ``hf_res``³)."""

    name = "maestro"

    def __init__(
        self,
        lf_count: int = 16,
        lf_res: int = 32,
        hf_res: int = 192,
        iterations: int = 2,
        include_lf: bool = True,
    ) -> None:
        if lf_count < 1:
            raise ValueError("lf_count must be >= 1")
        if lf_res < 4 or hf_res < 4:
            raise ValueError("resolutions must be >= 4")
        self.lf_count = lf_count
        self.lf_res = lf_res
        self.hf_res = hf_res
        self.iterations = iterations
        #: False builds the HF-alone graph (Figure 7's 1.0 reference).
        self.include_lf = include_lf

    def input_label(self) -> str:
        return f"lf{self.lf_count}x{self.lf_res}c_hf{self.hf_res}c"

    @property
    def hf_cells(self) -> int:
        return self.hf_res**3

    @property
    def lf_cells_total(self) -> int:
        return self.lf_count * self.lf_res**3

    # ------------------------------------------------------------------
    def roots(self) -> Sequence[RootSpec]:
        hf = self.hf_cells
        lf = self.lf_cells_total
        return [
            # High fidelity (fixed mapping).
            RootSpec("hf_U", hf, U_BYTES),
            RootSpec("hf_Q", hf, Q_BYTES),
            RootSpec("hf_flux3", hf, 3 * FLUX_BYTES),
            # Sampled mid-plane of Q that the host-side analysis consumes.
            RootSpec("hf_Q_sample", self.hf_res**2, Q_BYTES),
            RootSpec("hf_stats_buf", 4096, 8),
            # Low-fidelity ensemble (stacked over samples).
            RootSpec("lf_U", lf, U_BYTES),
            RootSpec("lf_Q", lf, Q_BYTES),
            RootSpec("lf_flux_x", lf, FLUX_BYTES),
            RootSpec("lf_flux_y", lf, FLUX_BYTES),
            RootSpec("lf_flux_z", lf, FLUX_BYTES),
            RootSpec("lf_rhs", lf, U_BYTES),
            RootSpec("lf_mu", lf, 8),
            RootSpec("lf_kappa", lf, 8),
            RootSpec("lf_dtred", 64 * self.lf_count, 8),
            RootSpec("lf_stats", 512 * self.lf_count, 8),
            RootSpec("lf_samples", 4096 * self.lf_count, 8),
            RootSpec("lf_forcing_tab", 4096, 8),
            RootSpec("dt", 8, 8),
            RootSpec("bc_data", 1024, 8),
        ]

    def kinds(self) -> Sequence[KindSpec]:
        def kind(name, slots, flops, work, gpu=1.0, variants=None):
            # HF kinds always decompose over the machine's GPUs — the HF
            # sample's partitioning does not change with the ensemble.
            return KindSpec(
                name,
                slots=tuple(slots),
                flops_per_elem=flops,
                work_root=work,
                gpu_speedup=gpu,
                variants=variants or (ProcKind.CPU, ProcKind.GPU),
                group_over="gpus" if name.startswith("hf_") else None,
            )

        s = SlotSpec
        out = [
            # ---- high fidelity (fixed mapping; launched per iteration).
            kind("hf_flux", [
                s("Q", "hf_Q", R), s("flux", "hf_flux3", RW),
            ], 180, "hf_Q", gpu=1.0),
            kind("hf_update", [
                s("U", "hf_U", RW), s("flux", "hf_flux3", R),
                s("dt", "dt", R, REPL),
            ], 40, "hf_U", gpu=1.0),
            kind("hf_primitive", [
                s("U", "hf_U", R), s("Q", "hf_Q", RW),
                s("Q_sample", "hf_Q_sample", W),
            ], 40, "hf_U", gpu=1.0),
            # HF per-step host-side analysis: CPU-only variant reading the
            # sampled plane.
            kind("hf_stats", [
                s("Q_sample", "hf_Q_sample", R),
                s("buf", "hf_stats_buf", RW),
            ], 30, "hf_Q_sample", gpu=1.0, variants=(ProcKind.CPU,)),
            # ---- low-fidelity ensemble (the 13 searched kinds).
            kind("lf_flux_x", [
                s("Q", "lf_Q", R), s("flux", "lf_flux_x", RW),
            ], 60, "lf_Q", gpu=0.8),
            kind("lf_flux_y", [
                s("Q", "lf_Q", R), s("flux", "lf_flux_y", RW),
            ], 60, "lf_Q", gpu=0.8),
            kind("lf_flux_z", [
                s("Q", "lf_Q", R), s("flux", "lf_flux_z", RW),
            ], 60, "lf_Q", gpu=0.8),
            kind("lf_rhs", [
                s("fx", "lf_flux_x", R), s("fy", "lf_flux_y", R),
                s("fz", "lf_flux_z", R), s("rhs", "lf_rhs", RW),
            ], 24, "lf_rhs", gpu=0.8),
            kind("lf_update", [
                s("U", "lf_U", RW), s("rhs", "lf_rhs", R),
                s("dt", "dt", R, REPL),
            ], 16, "lf_U", gpu=0.8),
            kind("lf_primitive", [
                s("U", "lf_U", R), s("Q", "lf_Q", RW),
            ], 30, "lf_U", gpu=0.8),
            kind("lf_transport", [
                s("Q", "lf_Q", R), s("mu", "lf_mu", RW),
                s("kappa", "lf_kappa", RW),
            ], 40, "lf_Q", gpu=0.7),
            kind("lf_forcing", [
                s("U", "lf_U", RW),
                s("tab", "lf_forcing_tab", R, REPL),
            ], 10, "lf_U", gpu=0.7),
            kind("lf_bc_lo", [
                s("Q", "lf_Q", RW, ShardPattern.STRIP_LO_IN, 0.02),
                s("bc", "bc_data", R, REPL),
            ], 1, "lf_Q", gpu=0.3),
            kind("lf_bc_hi", [
                s("Q", "lf_Q", RW, ShardPattern.STRIP_HI_IN, 0.02),
                s("bc", "bc_data", R, REPL),
            ], 1, "lf_Q", gpu=0.3),
            kind("lf_dt", [
                s("Q", "lf_Q", R), s("dtred", "lf_dtred", RW),
            ], 4, "lf_Q", gpu=0.5),
            kind("lf_stats", [
                s("Q", "lf_Q", R), s("stats", "lf_stats", RW),
            ], 4, "lf_Q", gpu=0.5),
            kind("lf_sample_collect", [
                s("Q", "lf_Q", R), s("samples", "lf_samples", RW),
            ], 2, "lf_Q", gpu=0.4),
        ]
        if not self.include_lf:
            out = [k for k in out if k.name.startswith("hf_")]
        return out

    # ------------------------------------------------------------------
    # Group sizing: LF launches group over ensemble members.
    # ------------------------------------------------------------------
    def graph(self, machine: Machine):
        graph = super().graph(machine)
        return graph

    def parts(self, machine: Machine) -> int:
        # LF launches bundle ensemble members into at most two groups per
        # GPU (Maestro batches samples per processor rather than paying
        # per-sample launch overhead); HF kinds decompose over the GPUs
        # independently (``group_over="gpus"``).
        gpus = max(1, len(machine.processors_of_kind(ProcKind.GPU)))
        return max(2, min(self.lf_count, 2 * gpus))

    # ------------------------------------------------------------------
    # Fixed HF mapping and the HF-latency objective.
    # ------------------------------------------------------------------
    def fixed_hf_decisions(self) -> Dict[str, MappingDecision]:
        fb = MemKind.FRAMEBUFFER
        zc = MemKind.ZERO_COPY
        return {
            "hf_flux": MappingDecision(True, ProcKind.GPU, (fb, fb)),
            "hf_update": MappingDecision(True, ProcKind.GPU, (fb, fb, zc)),
            "hf_primitive": MappingDecision(True, ProcKind.GPU, (fb, fb, zc)),
            "hf_stats": MappingDecision(True, ProcKind.CPU, (zc, zc)),
        }

    def space(self, machine: Machine) -> SearchSpace:
        return SearchSpace(
            self.graph(machine),
            machine,
            fixed_decisions=self.fixed_hf_decisions(),
        )

    def num_tasks(self) -> int:
        """Figure 5 counts "13 (only LFs)": HF kinds are fixed."""
        return sum(1 for k in self.kinds() if k.name.startswith("lf_"))

    def num_collection_arguments(self) -> int:
        return sum(
            len(k.slots) for k in self.kinds() if k.name.startswith("lf_")
        )

    @staticmethod
    def hf_metric(report: ExecutionReport) -> float:
        """The objective of §5.1: the finish time of the HF simulation."""
        return max(
            (report.kind_finish.get(k, 0.0) for k in HF_KINDS), default=0.0
        )

    def hf_alone(self) -> "MaestroApp":
        """The same configuration without any LF simulations — the
        reference whose HF time defines Figure 7's 1.0 line."""
        return MaestroApp(
            lf_count=self.lf_count,
            lf_res=self.lf_res,
            hf_res=self.hf_res,
            iterations=self.iterations,
            include_lf=False,
        )

    # ------------------------------------------------------------------
    # The two standard strategies of Figure 7.
    # ------------------------------------------------------------------
    def _lf_strategy(
        self, machine: Machine, proc: ProcKind, mem: MemKind
    ) -> Mapping:
        mapping = self.space(machine).default_mapping()
        for kspec in self.kinds():
            if not kspec.name.startswith("lf_"):
                continue
            decision = MappingDecision(
                distribute=True,
                proc_kind=proc,
                mem_kinds=(mem,) * len(kspec.slots),
            )
            mapping = mapping.with_decision(kspec.name, decision)
        return mapping

    def strategy_cpu_system(self, machine: Machine) -> Mapping:
        """All LF tasks on CPUs, all LF collections in System memory."""
        return self._lf_strategy(machine, ProcKind.CPU, MemKind.SYSTEM)

    def strategy_gpu_zero_copy(self, machine: Machine) -> Mapping:
        """All LF tasks on GPUs, all LF collections in Zero-Copy."""
        return self._lf_strategy(machine, ProcKind.GPU, MemKind.ZERO_COPY)

    def custom_mapping(self, machine: Machine) -> Mapping:
        """Maestro ships the GPU+Zero-Copy strategy as its default
        hand-written choice."""
        return self.strategy_gpu_zero_copy(machine)
