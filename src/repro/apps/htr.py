"""HTR: multi-physics hypersonic solver (paper Figure 5 row 4).

The HTR solver [Di Renzo, Fu, Urzay, CPC '20] integrates the
multi-species compressible Navier–Stokes equations with chemistry on a
structured 3D grid: per RK sub-step it computes directional fluxes and
gradients from the primitive state, assembles the right-hand side,
applies boundary conditions, and advances the conserved state; transport
properties and chemical source terms are separate passes.  That main
loop is the paper's Figure 2 dependence graph.

The mapping-relevant structure: two *large, widely shared* collections —
the conserved state ``U`` and the primitive state ``Q`` — are read or
written by most of the 28 task kinds.  Their slots form a heavy cluster
in the induced collection graph, so CCD's co-location constraints move
them between Frame-Buffer and Zero-Copy *together*; the paper's §4.2
multi-physics example (and the Figure 3 mappings that place 9 collection
arguments in Zero-Copy) is exactly this structure.

Inputs are labelled ``{x}x{y}y{z}z`` — grid cells per direction, matching
Figures 6d/9.
"""

from __future__ import annotations

from typing import Sequence

from repro.apps.base import App, KindSpec, RootSpec, SlotSpec
from repro.machine.kinds import MemKind
from repro.machine.model import Machine
from repro.mapping.mapping import Mapping
from repro.taskgraph.task import Privilege, ShardPattern

__all__ = ["HTRApp"]

R, W, RW = Privilege.READ, Privilege.WRITE, Privilege.READ_WRITE
B, BH, REPL = (
    ShardPattern.BLOCK,
    ShardPattern.BLOCK_HALO,
    ShardPattern.REPLICATED,
)
LO_OUT, HI_OUT = ShardPattern.STRIP_LO_OUT, ShardPattern.STRIP_HI_OUT

#: Species-resolved state: bytes per cell per field group.
U_BYTES = 120  # 15 conserved variables
Q_BYTES = 160  # 20 primitive variables
FLUX_BYTES = 120
GRAD_BYTES = 72
RATES_BYTES = 80
DIFF_BYTES = 40
METRICS_BYTES = 48

#: Stencil halo as a fraction of a per-part share (6th-order schemes
#: need 3 ghost planes; a few percent of a typical tile).
HALO = 0.05


def _slot(name, root, priv=R, pattern=B, halo=0.0) -> SlotSpec:
    return SlotSpec(name, root, priv, pattern, halo)


class HTRApp(App):
    """HTR on an ``x × y × z`` cell grid."""

    name = "htr"

    def __init__(
        self, x: int = 32, y: int = 32, z: int = 36, iterations: int = 2
    ) -> None:
        if min(x, y, z) < 1:
            raise ValueError("grid dims must be positive")
        self.x = x
        self.y = y
        self.z = z
        self.iterations = iterations

    def input_label(self) -> str:
        return f"{self.x}x{self.y}y{self.z}z"

    @property
    def cells(self) -> int:
        return self.x * self.y * self.z

    # ------------------------------------------------------------------
    def roots(self) -> Sequence[RootSpec]:
        n = self.cells
        return [
            RootSpec("U", n, U_BYTES),
            RootSpec("Q", n, Q_BYTES),
            RootSpec("flux_x", n, FLUX_BYTES),
            RootSpec("flux_y", n, FLUX_BYTES),
            RootSpec("flux_z", n, FLUX_BYTES),
            RootSpec("rhs", n, U_BYTES),
            RootSpec("grad", n, GRAD_BYTES),
            RootSpec("mu", n, 8),
            RootSpec("kappa", n, 8),
            RootSpec("diff", n, DIFF_BYTES),
            RootSpec("rates", n, RATES_BYTES),
            RootSpec("metrics", n, METRICS_BYTES),
            RootSpec("coords", n, 24),
            RootSpec("sensor", n, 8),
            RootSpec("sgs", n, 8),
            RootSpec("dtred", 64, 8),
            RootSpec("stats", 512, 8),
            RootSpec("dt", 8, 8),
            RootSpec("bc_data", 1024, 8),
        ]

    def kinds(self) -> Sequence[KindSpec]:
        def kind(name, slots, flops, work, gpu=1.0) -> KindSpec:
            return KindSpec(
                name,
                slots=tuple(slots),
                flops_per_elem=flops,
                work_root=work,
                gpu_speedup=gpu,
            )

        out = []
        # Directional fluxes: read primitive state with a stencil halo.
        for axis in "xyz":
            out.append(kind(f"flux_{axis}", [
                _slot("Q", "Q", R, BH, HALO),
                _slot("metrics", "metrics"),
                _slot("flux", f"flux_{axis}", RW),
            ], 160, "Q", gpu=1.0))
        out.append(kind("rhs_assembly", [
            _slot("fx", "flux_x"), _slot("fy", "flux_y"),
            _slot("fz", "flux_z"), _slot("rhs", "rhs", RW),
        ], 30, "rhs", gpu=1.0))
        # Three RK sub-steps per iteration.
        for stage in range(1, 4):
            out.append(kind(f"rk_update_{stage}", [
                _slot("U", "U", RW),
                _slot("rhs", "rhs"),
                _slot("dt", "dt", R, REPL),
                _slot("Q_old", "Q"),
            ], 24, "U", gpu=1.0))
        out.append(kind("primitive_from_conserved", [
            _slot("U", "U"), _slot("Q", "Q", RW),
        ], 60, "U", gpu=0.9))
        out.append(kind("transport_props", [
            _slot("Q", "Q"), _slot("mu", "mu", RW),
            _slot("kappa", "kappa", RW), _slot("diff", "diff", RW),
        ], 80, "Q", gpu=0.8))
        out.append(kind("chemistry_source", [
            _slot("Q", "Q"), _slot("rates", "rates", RW),
        ], 400, "Q", gpu=1.0))
        out.append(kind("chemistry_update", [
            _slot("U", "U", RW), _slot("rates", "rates"),
        ], 20, "U", gpu=0.9))
        for axis in "xyz":
            out.append(kind(f"gradient_{axis}", [
                _slot("Q", "Q", R, BH, HALO),
                _slot("grad", "grad", RW),
            ], 40, "Q", gpu=1.0))
        # Boundary conditions: thin strips of the primitive state.
        for axis in "xyz":
            out.append(kind(f"bc_{axis}_lo", [
                _slot("Q", "Q", RW, ShardPattern.STRIP_LO_IN, HALO),
                _slot("bc", "bc_data", R, REPL),
            ], 2, "Q", gpu=0.3))
            out.append(kind(f"bc_{axis}_hi", [
                _slot("Q", "Q", RW, ShardPattern.STRIP_HI_IN, HALO),
                _slot("bc", "bc_data", R, REPL),
            ], 2, "Q", gpu=0.3))
        out.append(kind("metric_calc", [
            _slot("coords", "coords"), _slot("metrics", "metrics", RW),
        ], 12, "coords", gpu=0.8))
        out.append(kind("dt_calc", [
            _slot("Q", "Q"), _slot("dtred", "dtred", RW),
        ], 8, "Q", gpu=0.6))
        out.append(kind("flow_stats", [
            _slot("Q", "Q"), _slot("stats", "stats", RW),
        ], 6, "Q", gpu=0.5))
        out.append(kind("shock_sensor", [
            _slot("Q", "Q", R, BH, HALO), _slot("sensor", "sensor", RW),
        ], 16, "Q", gpu=0.9))
        for axis in "xyz":
            out.append(kind(f"flux_correction_{axis}", [
                _slot("sensor", "sensor"),
                _slot("Q", "Q", R, BH, HALO),
                _slot("flux", f"flux_{axis}", RW),
            ], 50, "Q", gpu=0.9))
        out.append(kind("sgs_model", [
            _slot("grad", "grad"), _slot("sgs", "sgs", RW),
        ], 30, "grad", gpu=0.9))
        return out

    # ------------------------------------------------------------------
    def custom_mapping(self, machine: Machine) -> Mapping:
        """Published strategy: GPUs everywhere like the default, but the
        small reduction outputs (dt, statistics) in Zero-Copy memory so
        the host consumes them without device synchronisation."""
        mapping = self.default_mapping(machine)
        zc = MemKind.ZERO_COPY
        mapping = self._decide(mapping, "dt_calc", mems={"dtred": zc})
        mapping = self._decide(mapping, "flow_stats", mems={"stats": zc})
        return mapping
