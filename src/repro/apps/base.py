"""Application base class and the declarative kind/slot specification.

The five benchmark applications share a structure: a set of *root* data
arrays sized by the input, a list of task kinds with collection-argument
slots over those roots, and a main loop launching every kind once per
iteration.  :class:`App` turns such a declarative spec into a
:class:`~repro.taskgraph.graph.TaskGraph`, and provides the runtime
default mapping and a hook for the application's hand-written custom
mapper.

Cost parameters (``flops_per_elem`` per kind, element counts per root)
are calibrated against the reference kernels in :mod:`repro.kernels`;
they express *relative* task weights, which is all the mapping search
observes.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro.machine.kinds import MemKind, ProcKind
from repro.machine.model import Machine
from repro.mapping.mapping import Mapping
from repro.mapping.space import SearchSpace
from repro.taskgraph.builder import GraphBuilder
from repro.taskgraph.graph import TaskGraph
from repro.taskgraph.task import ArgSlot, Privilege, ShardPattern

__all__ = ["RootSpec", "SlotSpec", "KindSpec", "App"]

#: Bytes per mesh/grid element (double precision).
ELEM_BYTES = 8


@dataclass(frozen=True)
class RootSpec:
    """One logical data array: ``elems`` elements of ``elem_bytes``."""

    name: str
    elems: int
    elem_bytes: int = ELEM_BYTES

    @property
    def nbytes(self) -> int:
        return max(1, self.elems * self.elem_bytes)


@dataclass(frozen=True)
class SlotSpec:
    """One collection-argument slot of a kind, bound to a root array.

    Halo/strip widths come from ``halo_bytes`` when given (absolute,
    e.g. a stencil's RADIUS rows) and otherwise from ``halo_frac``, a
    fraction of the root's per-part share (clamped to at least one
    element)."""

    name: str
    root: str
    privilege: Privilege = Privilege.READ
    pattern: ShardPattern = ShardPattern.BLOCK
    halo_frac: float = 0.0
    halo_bytes: Optional[int] = None


@dataclass(frozen=True)
class KindSpec:
    """One task kind: slots plus cost parameters.

    ``flops_per_elem`` scales with the kind's *work root* (its first
    slot's root by default) — the per-element arithmetic intensity
    calibrated from the reference kernels.  ``gpu_speedup`` < 1 models
    kernels that vectorise poorly (gather/scatter-heavy unstructured-mesh
    code), as a multiplier on the machine's GPU throughput.
    """

    name: str
    slots: Tuple[SlotSpec, ...]
    flops_per_elem: float = 10.0
    work_root: Optional[str] = None
    gpu_speedup: float = 1.0
    variants: Tuple[ProcKind, ...] = (ProcKind.CPU, ProcKind.GPU)
    #: Group-launch sizing: None uses the app's partition count; "gpus"
    #: groups over the machine's GPU count (e.g. a fixed-decomposition
    #: component like Maestro's HF sample, independent of ensemble size).
    group_over: Optional[str] = None


class App(abc.ABC):
    """A benchmark application: a parameterised task-graph generator."""

    #: Application name (Figure 5's first column).
    name: str = "app"
    #: Main-loop iterations included in the generated graph.
    iterations: int = 2
    #: Group-launch decomposition: point tasks per GPU on the machine.
    parts_per_gpu: int = 2

    # ------------------------------------------------------------------
    # Spec hooks (implemented by each application)
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def roots(self) -> Sequence[RootSpec]:
        """The application's root data arrays for the current input."""

    @abc.abstractmethod
    def kinds(self) -> Sequence[KindSpec]:
        """The task kinds launched each iteration, in program order."""

    @abc.abstractmethod
    def input_label(self) -> str:
        """The paper's input label (e.g. ``"n50w200"``, ``"320x90"``)."""

    # ------------------------------------------------------------------
    # Graph construction
    # ------------------------------------------------------------------
    def parts(self, machine: Machine) -> int:
        """Group-launch size: the blocked decomposition the application
        was configured with (a few pieces per GPU, as the real codes
        launch)."""
        gpus = len(machine.processors_of_kind(ProcKind.GPU))
        return max(2, self.parts_per_gpu * max(1, gpus))

    def graph(self, machine: Machine) -> TaskGraph:
        """Build the dependence graph of ``iterations`` main-loop passes
        on the given machine's decomposition."""
        roots = list(self.roots())
        kinds = list(self.kinds())
        self._validate_spec(roots, kinds)
        parts = self.parts(machine)
        builder = GraphBuilder(f"{self.name}-{self.input_label()}")

        collections = {
            spec.name: builder.collection(spec.name, nbytes=spec.nbytes)
            for spec in roots
        }
        root_bytes = {spec.name: spec.nbytes for spec in roots}
        root_elems = {spec.name: spec.elems for spec in roots}

        gpus = len(machine.processors_of_kind(ProcKind.GPU))
        task_kinds = {}
        for kspec in kinds:
            kind_size = parts
            if kspec.group_over == "gpus":
                kind_size = max(2, gpus)
            slots = []
            for sspec in kspec.slots:
                halo = 0
                if sspec.pattern not in (
                    ShardPattern.BLOCK,
                    ShardPattern.REPLICATED,
                ):
                    share = max(1, root_bytes[sspec.root] // kind_size)
                    if sspec.halo_bytes is not None:
                        halo = min(share, max(ELEM_BYTES, sspec.halo_bytes))
                    else:
                        halo = max(ELEM_BYTES, int(share * sspec.halo_frac))
                slots.append(
                    ArgSlot(
                        name=sspec.name,
                        privilege=sspec.privilege,
                        pattern=sspec.pattern,
                        halo_bytes=halo,
                    )
                )
            task_kinds[kspec.name] = builder.task_kind(
                kspec.name,
                slots=slots,
                variants=kspec.variants,
                gpu_speedup=kspec.gpu_speedup,
            )

        for _iteration in range(self.iterations):
            for kspec in kinds:
                work_root = kspec.work_root or kspec.slots[0].root
                flops = kspec.flops_per_elem * root_elems[work_root]
                size = parts
                if kspec.group_over == "gpus":
                    size = max(2, gpus)
                builder.launch(
                    task_kinds[kspec.name],
                    [collections[s.root] for s in kspec.slots],
                    size=size,
                    flops=flops,
                )
        return builder.build()

    @staticmethod
    def _validate_spec(
        roots: Sequence[RootSpec], kinds: Sequence[KindSpec]
    ) -> None:
        root_names = {r.name for r in roots}
        if len(root_names) != len(list(roots)):
            raise ValueError("duplicate root names in app spec")
        for kspec in kinds:
            for sspec in kspec.slots:
                if sspec.root not in root_names:
                    raise ValueError(
                        f"{kspec.name}[{sspec.name}]: unknown root "
                        f"{sspec.root!r}"
                    )
            if kspec.work_root is not None and kspec.work_root not in root_names:
                raise ValueError(
                    f"{kspec.name}: unknown work root {kspec.work_root!r}"
                )

    # ------------------------------------------------------------------
    # Mappings
    # ------------------------------------------------------------------
    def space(self, machine: Machine) -> SearchSpace:
        """The mapping search space (apps with fixed kinds override)."""
        return SearchSpace(self.graph(machine), machine)

    def default_mapping(self, machine: Machine) -> Mapping:
        """The runtime default mapper's starting mapping (§4.1/§5)."""
        return self.space(machine).default_mapping()

    def custom_mapping(self, machine: Machine) -> Mapping:
        """The application's hand-written custom mapper (§5).  The base
        implementation returns the default strategy; applications with a
        published custom mapper override."""
        return self.default_mapping(machine)

    # ------------------------------------------------------------------
    # Spec-level summaries (Figure 5 columns)
    # ------------------------------------------------------------------
    def num_tasks(self) -> int:
        return len(list(self.kinds()))

    def num_collection_arguments(self) -> int:
        return sum(len(k.slots) for k in self.kinds())

    def _decide(
        self,
        mapping: Mapping,
        kind_name: str,
        proc: Optional[ProcKind] = None,
        mems: Optional[Dict[str, MemKind]] = None,
        distribute: Optional[bool] = None,
    ) -> Mapping:
        """Helper for custom mappers: tweak one kind's decision.

        ``mems`` maps *slot names* to memory kinds (unnamed slots keep
        their current kind).
        """
        kinds = {k.name: k for k in self.kinds()}
        kspec = kinds[kind_name]
        decision = mapping.decision(kind_name)
        if distribute is not None:
            decision = decision.with_distribute(distribute)
        if proc is not None:
            decision = decision.with_proc(proc)
        if mems:
            for slot_index, sspec in enumerate(kspec.slots):
                if sspec.name in mems:
                    decision = decision.with_mem(
                        slot_index, mems[sspec.name]
                    )
        return mapping.with_decision(kind_name, decision)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}({self.input_label()!r})"
