"""Stencil: 2D structured star stencil (paper Figure 5 row 2).

The Parallel Research Kernels stencil [Wijngaart & Mattson, HPEC '14]:
each iteration applies a radius-2 star stencil ``in → out`` and then
increments every element of ``in``.  Two task kinds; the collection
arguments split each grid into the interior block plus boundary strips
exchanged with the four neighbours (the Legion implementation declares
separate region requirements for interior and ghost regions, giving the
12 collection arguments of Figure 5).

Inputs are labelled ``{nx}x{ny}`` — the *per-node* grid, weak-scaled in
Figure 6b.  Both kinds are memory-bandwidth-bound (~2 flops per byte
read), which is why small and mid sizes favour CPU sockets (no kernel-
launch latency, System memory close by) while large sizes favour the
GPU's frame-buffer bandwidth — the crossover AutoMap discovers.

The published custom mapper for Stencil follows the default strategy
(all GPU, all Frame-Buffer), so ``custom_mapping`` == default — matching
Figure 6b, where the custom mapper tracks 1.0× everywhere.
"""

from __future__ import annotations

from typing import Sequence

from repro.apps.base import App, KindSpec, RootSpec, SlotSpec
from repro.taskgraph.task import Privilege, ShardPattern

__all__ = ["StencilApp"]

RADIUS = 2

#: Calibrated arithmetic intensity (see repro.kernels.stencil2d):
#: 4*radius multiply-adds per interior point; increment is 1 flop/point.
STENCIL_FLOPS_PER_POINT = 4.0 * RADIUS * 2.0
INCREMENT_FLOPS_PER_POINT = 1.0


class StencilApp(App):
    """PRK stencil on an ``nx × ny`` per-node grid."""

    name = "stencil"

    def __init__(
        self, nx: int = 1000, ny: int = 1000, iterations: int = 2
    ) -> None:
        if nx < 8 or ny < 8:
            raise ValueError("grid too small for a radius-2 stencil")
        self.nx = nx
        self.ny = ny
        self.iterations = iterations

    def input_label(self) -> str:
        return f"{self.nx}x{self.ny}"

    # ------------------------------------------------------------------
    def roots(self) -> Sequence[RootSpec]:
        points = self.nx * self.ny
        return [
            RootSpec("in_grid", points),
            RootSpec("out_grid", points),
            RootSpec("weights", (2 * RADIUS + 1) ** 2),
        ]

    def kinds(self) -> Sequence[KindSpec]:
        R, W, RW = Privilege.READ, Privilege.WRITE, Privilege.READ_WRITE
        B = ShardPattern.BLOCK
        LO_OUT, HI_OUT = ShardPattern.STRIP_LO_OUT, ShardPattern.STRIP_HI_OUT
        LO_IN, HI_IN = ShardPattern.STRIP_LO_IN, ShardPattern.STRIP_HI_IN
        # Halo widths in bytes: the row-direction (north/south) halo is
        # RADIUS rows; the column-direction halo is RADIUS columns, which
        # in flattened row-major bytes is a strided strip of equal volume.
        ns = RADIUS * self.nx * 8
        ew = RADIUS * self.ny * 8
        return [
            KindSpec(
                "stencil",
                slots=(
                    SlotSpec("out_c", "out_grid", W, B),
                    SlotSpec("out_n", "out_grid", W, LO_IN, halo_bytes=ns),
                    SlotSpec("out_s", "out_grid", W, HI_IN, halo_bytes=ns),
                    SlotSpec("out_w", "out_grid", W, LO_IN, halo_bytes=ew),
                    SlotSpec("out_e", "out_grid", W, HI_IN, halo_bytes=ew),
                    SlotSpec("in_c", "in_grid", R, B),
                    SlotSpec("in_n", "in_grid", R, LO_OUT, halo_bytes=ns),
                    SlotSpec("in_s", "in_grid", R, HI_OUT, halo_bytes=ns),
                    SlotSpec("in_w", "in_grid", R, LO_OUT, halo_bytes=ew),
                    SlotSpec("in_e", "in_grid", R, HI_OUT, halo_bytes=ew),
                    SlotSpec("w", "weights", R, ShardPattern.REPLICATED),
                ),
                flops_per_elem=STENCIL_FLOPS_PER_POINT,
                work_root="in_grid",
                gpu_speedup=1.0,
            ),
            KindSpec(
                "increment",
                slots=(SlotSpec("in", "in_grid", RW, B),),
                flops_per_elem=INCREMENT_FLOPS_PER_POINT,
                work_root="in_grid",
                gpu_speedup=1.0,
            ),
        ]

    # custom_mapping: inherited default (the published Stencil mapper
    # follows the default strategy; Figure 6b shows it at ~1.0x).
