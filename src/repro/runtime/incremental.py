"""Incremental re-simulation for coordinate-wise search chains.

CD/CCD mutate one mapping coordinate per candidate, so consecutive
simulations share most of their event schedule.  This module exploits
that in two layered ways:

1. **Per-launch cost memoisation** (:class:`LaunchCostCache`): for a
   given ``(launch, decision)`` pair, the placement set, per-point
   durations, read shards, and write shards are pure functions of the
   decision — independent of simulation state.  They are computed once,
   with the executor's exact float operation order, and every later
   execution of that launch under that decision is a dict hit.

2. **Schedule prefix replay** (:class:`IncrementalEngine`): the engine
   keeps state snapshots of the previously simulated mapping at every
   task kind's first launch index.  A new candidate is diffed against
   the previous one per kind; the *dirty index* is the smallest launch
   index whose kind's decision changed.  Execution state at that index
   is bitwise-identical between the two schedules (launches are
   processed in a fixed topological order, and the state before index
   ``i`` depends only on the decisions of launches ``< i``), so the
   engine restores the deepest snapshot at-or-before the dirty index
   and re-simulates only the suffix.

**Byte-identity contract.**  The engine reproduces
:meth:`repro.runtime.executor.Executor.run` exactly:

* the replayed suffix performs the *same* coherence, copy, and timeline
  operations in the *same* order (plan-read → copies → commit-cache per
  reading slot, reserve per point, group-barrier writes), so every
  float is produced by the identical operation sequence;
* memoised durations are the very floats the executor would compute
  (same ``+=`` accumulation order over slots);
* dict insertion orders (kind tallies, coherence roots, per-segment
  cache replicas) are replayed, so serialized reports and checkpoints
  are byte-identical, not merely numerically equal.

The correctness oracle is the PR-3/PR-4 determinism contracts: resume
ledgers, traces, and reports from an incremental session must match a
full-simulation session byte-for-byte (see ``tests/test_incremental.py``
and the CI ``incremental-identity`` step).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.machine.kinds import ProcKind
from repro.machine.model import Machine
from repro.machine.topology import Topology
from repro.mapping.decision import MappingDecision
from repro.mapping.mapping import Mapping
from repro.runtime.copies import CopyEngine, CopyStats
from repro.runtime.events import TimelinePool
from repro.runtime.executor import ExecutionReport
from repro.runtime.instances import CoherenceState
from repro.runtime.placement import Placer
from repro.taskgraph.graph import TaskGraph

__all__ = ["IncrementalStats", "LaunchCostCache", "IncrementalEngine"]


@dataclass
class IncrementalStats:
    """Effectiveness counters for the incremental machinery.

    Deliberately *not* registered in the oracle's metrics registry:
    checkpoints embed that registry's snapshot, and these counters
    depend on chain history — registering them would break the
    checkpoint byte-identity contract between incremental and full
    sessions.
    """

    #: Simulated executions routed through the engine.
    runs: int = 0
    #: Runs that restored a non-empty prefix from a snapshot.
    incremental_runs: int = 0
    #: Launches skipped by restoring a snapshot instead of executing.
    launches_replayed: int = 0
    #: Launches actually (re-)executed.
    launches_executed: int = 0
    #: Per-launch cost lookups served from the memo table.
    cost_hits: int = 0
    #: Per-launch cost lookups that had to compute placements.
    cost_misses: int = 0

    @property
    def replay_fraction(self) -> float:
        """Fraction of launch executions avoided via prefix replay."""
        total = self.launches_replayed + self.launches_executed
        if total == 0:
            return 0.0
        return self.launches_replayed / total

    @property
    def cost_hit_rate(self) -> float:
        total = self.cost_hits + self.cost_misses
        if total == 0:
            return 0.0
        return self.cost_hits / total

    def as_dict(self) -> Dict[str, float]:
        return {
            "runs": self.runs,
            "incremental_runs": self.incremental_runs,
            "launches_replayed": self.launches_replayed,
            "launches_executed": self.launches_executed,
            "cost_hits": self.cost_hits,
            "cost_misses": self.cost_misses,
            "replay_fraction": self.replay_fraction,
            "cost_hit_rate": self.cost_hit_rate,
        }


class _PointCost:
    """State-independent cost of one point task under one decision."""

    __slots__ = ("proc_uid", "duration", "slots", "writes")

    def __init__(
        self,
        proc_uid: str,
        duration: float,
        slots: Tuple[Tuple[str, Optional[Tuple[int, int, str]]], ...],
        writes: Tuple[Tuple[str, int, int, str], ...],
    ) -> None:
        self.proc_uid = proc_uid
        self.duration = duration
        #: Per argument slot, in slot order: ``(root, read)`` where
        #: ``read`` is ``(lo, hi, mem_uid)`` for reading slots with a
        #: non-empty shard, else ``None``.  Every slot is listed — the
        #: executor touches each slot's coherence root unconditionally,
        #: which fixes root-dict insertion order.
        self.slots = slots
        #: Write shards ``(root, lo, hi, mem_uid)`` in slot order.
        self.writes = writes


class LaunchCostCache:
    """Memoised placement-derived costs per ``(launch, decision)``.

    The cached duration is computed with the executor's exact float
    operation sequence (per-slot ``+=`` accumulation of access seconds,
    then ``overhead + compute + access``), so a cache hit yields the
    bitwise-identical duration the executor would have produced.
    """

    def __init__(
        self,
        machine: Machine,
        stats: Optional[IncrementalStats] = None,
    ) -> None:
        self.machine = machine
        self.placer = Placer(machine)
        self.stats = stats if stats is not None else IncrementalStats()
        self._costs: Dict[tuple, Tuple[_PointCost, ...]] = {}
        #: Shard intervals are decision-independent, so they are shared
        #: across every decision of a launch: (uid, slot, for_write) ->
        #: per-point (lo, hi).
        self._intervals: Dict[tuple, Tuple[Tuple[int, int], ...]] = {}

    def _shard_intervals(
        self, launch, slot_index: int, for_write: bool
    ) -> Tuple[Tuple[int, int], ...]:
        key = (launch.uid, slot_index, for_write)
        cached = self._intervals.get(key)
        if cached is None:
            cached = tuple(
                launch.shard_interval(slot_index, point, for_write=for_write)
                for point in range(launch.size)
            )
            self._intervals[key] = cached
        return cached

    def costs(self, launch, decision: MappingDecision) -> Tuple[_PointCost, ...]:
        key = (launch.uid, decision.key())
        cached = self._costs.get(key)
        if cached is not None:
            self.stats.cost_hits += 1
            return cached
        self.stats.cost_misses += 1
        cached = self._compute(launch, decision)
        self._costs[key] = cached
        return cached

    def _compute(
        self, launch, decision: MappingDecision
    ) -> Tuple[_PointCost, ...]:
        # Mirrors Executor.run's per-placement loop, minus every
        # state-dependent step (coherence planning, copies, reserve).
        placements = self.placer.place_launch(launch, decision)
        point_flops = launch.flops / launch.size
        gpu_adjust = (
            launch.kind.gpu_speedup
            if decision.proc_kind == ProcKind.GPU
            else 1.0
        )
        # Per-slot data that does not depend on the placement point.
        slot_info = []
        for slot_index, slot in enumerate(launch.kind.slots):
            root = launch.args[slot_index].root
            assert root is not None
            slot_info.append(
                (
                    slot_index,
                    slot,
                    root,
                    launch.arg_bytes_per_point(slot_index),
                    int(slot.privilege.reads) + int(slot.privilege.writes),
                    self._shard_intervals(launch, slot_index, False),
                    self._shard_intervals(launch, slot_index, True)
                    if slot.privilege.writes
                    else None,
                )
            )
        points: List[_PointCost] = []
        for placement in placements:
            access_seconds = 0.0
            slots: List[Tuple[str, Optional[Tuple[int, int, str]]]] = []
            writes: List[Tuple[str, int, int, str]] = []
            for (
                slot_index,
                slot,
                root,
                bytes_pp,
                passes,
                read_intervals,
                write_intervals,
            ) in slot_info:
                mem = placement.mems[slot_index]
                lo, hi = read_intervals[placement.point]

                if slot.privilege.reads and hi > lo:
                    slots.append((root, (lo, hi, mem.uid)))
                else:
                    slots.append((root, None))

                link = self.machine.access_link(placement.proc.uid, mem.uid)
                if link is None:
                    raise ValueError(
                        f"{placement.proc.uid} cannot access {mem.uid} "
                        "(invalid mapping reached the executor)"
                    )
                access_seconds += (
                    link.latency + bytes_pp / link.bandwidth
                ) * passes

                if write_intervals is not None:
                    w_lo, w_hi = write_intervals[placement.point]
                    if w_hi > w_lo:
                        writes.append((root, w_lo, w_hi, mem.uid))

            compute_seconds = 0.0
            if point_flops > 0:
                compute_seconds = point_flops / (
                    placement.proc.throughput * gpu_adjust
                )
            duration = (
                placement.proc.launch_overhead
                + compute_seconds
                + access_seconds
            )
            points.append(
                _PointCost(
                    placement.proc.uid,
                    duration,
                    tuple(slots),
                    tuple(writes),
                )
            )
        return tuple(points)


class _State:
    """The mutable execution state at one point of the launch order."""

    __slots__ = (
        "procs",
        "channels",
        "copy_stats",
        "coherence",
        "finish",
        "kind_busy",
        "kind_points",
        "kind_finish",
        "makespan",
    )

    def __init__(self) -> None:
        self.procs = TimelinePool()
        self.channels = TimelinePool()
        self.copy_stats = CopyStats()
        self.coherence = CoherenceState()
        self.finish: Dict[str, float] = {}
        self.kind_busy: Dict[str, float] = {}
        self.kind_points: Dict[str, int] = {}
        self.kind_finish: Dict[str, float] = {}
        self.makespan = 0.0

    def clone(self) -> "_State":
        copy = _State.__new__(_State)
        copy.procs = self.procs.clone()
        copy.channels = self.channels.clone()
        copy.copy_stats = self.copy_stats.clone()
        copy.coherence = self.coherence.clone()
        copy.finish = dict(self.finish)
        copy.kind_busy = dict(self.kind_busy)
        copy.kind_points = dict(self.kind_points)
        copy.kind_finish = dict(self.kind_finish)
        copy.makespan = self.makespan
        return copy


class IncrementalEngine:
    """Executes mappings with prefix replay against the previous run.

    Drop-in equivalent of :meth:`Executor.run` for untraced executions;
    assumes (like the executor) that the mapping is valid and fits.
    """

    def __init__(
        self,
        graph: TaskGraph,
        machine: Machine,
        stats: Optional[IncrementalStats] = None,
    ) -> None:
        self.graph = graph
        self.machine = machine
        self.topology = Topology(machine)
        self.stats = stats if stats is not None else IncrementalStats()
        self.costs = LaunchCostCache(machine, stats=self.stats)
        self._order = graph.topological_order()
        # First launch index of each kind: state before that index can
        # only depend on *other* kinds' decisions... and earlier ones.
        self._first_index: Dict[str, int] = {}
        for index, launch in enumerate(self._order):
            self._first_index.setdefault(launch.kind.name, index)
        boundaries = sorted(set(self._first_index.values()))
        boundaries.append(len(self._order))
        if not boundaries or boundaries[0] != 0:
            boundaries.insert(0, 0)
        self._boundaries = boundaries
        self._boundary_set = set(boundaries)
        #: Decision keys of the previously executed mapping, per kind.
        self._base: Optional[Dict[str, tuple]] = None
        #: Snapshots of execution state keyed by launch index, captured
        #: *before* the launch at that index runs (plus one at
        #: ``len(order)`` capturing the final state).
        self._snapshots: Dict[int, _State] = {}

    # ------------------------------------------------------------------
    def _dirty_index(self, mapping: Mapping) -> int:
        """Smallest launch index whose kind's decision changed relative
        to the previous run (``len(order)`` when nothing changed)."""
        assert self._base is not None
        dirty = len(self._order)
        for kind_name, first in self._first_index.items():
            if first >= dirty:
                continue
            if mapping.decision(kind_name).key() != self._base[kind_name]:
                dirty = first
        return dirty

    def run(self, mapping: Mapping) -> ExecutionReport:
        """One deterministic execution, byte-identical to
        :meth:`Executor.run` on the same (validated, fitting) mapping."""
        order = self._order
        self.stats.runs += 1

        if self._base is None:
            dirty = 0
        else:
            dirty = self._dirty_index(mapping)

        # Deepest usable snapshot at-or-before the dirty index.  The
        # state there is bitwise-identical between the previous and the
        # new schedule, so restoring it is indistinguishable from
        # having executed the prefix.
        start = 0
        base_snapshot = None
        for index, snapshot in self._snapshots.items():
            if start <= index <= dirty:
                start = index
                base_snapshot = snapshot
        if base_snapshot is not None:
            state = base_snapshot.clone()
        else:
            state = _State()
            start = 0
        if start > 0:
            self.stats.incremental_runs += 1
            self.stats.launches_replayed += start

        # Snapshots past the dirty index describe the *old* schedule.
        self._snapshots = {
            index: snapshot
            for index, snapshot in self._snapshots.items()
            if index <= dirty
        }

        copy_engine = CopyEngine(
            self.topology, state.channels, stats=state.copy_stats
        )
        graph = self.graph
        coherence = state.coherence
        procs = state.procs
        finish = state.finish
        kind_busy = state.kind_busy
        kind_points = state.kind_points
        kind_finish = state.kind_finish
        makespan = state.makespan
        snapshots = self._snapshots
        boundary_set = self._boundary_set

        for index in range(start, len(order)):
            if index in boundary_set and index not in snapshots:
                state.makespan = makespan
                snapshots[index] = state.clone()
            launch = order[index]
            decision = mapping.decision(launch.kind.name)
            points = self.costs.costs(launch, decision)
            self.stats.launches_executed += 1

            ready_base = 0.0
            for dep in graph.predecessors(launch.uid):
                ready_base = max(ready_base, finish.get(dep.src, 0.0))

            pending_writes: List[Tuple[str, int, int, str]] = []
            launch_finish = 0.0
            kind_name = launch.kind.name

            for point in points:
                data_ready = ready_base
                for root, read in point.slots:
                    seg_map = coherence.root(root)
                    if read is not None:
                        lo, hi, mem_uid = read
                        local_ready, copies = seg_map.plan_read(
                            lo, hi, mem_uid
                        )
                        data_ready = max(data_ready, local_ready)
                        for need in copies:
                            done = copy_engine.execute(
                                need, mem_uid, ready_base
                            )
                            seg_map.commit_cache(
                                need.lo, need.hi, mem_uid, done
                            )
                            data_ready = max(data_ready, done)
                _start, point_finish = procs.reserve(
                    point.proc_uid, data_ready, point.duration
                )
                launch_finish = max(launch_finish, point_finish)
                kind_busy[kind_name] = (
                    kind_busy.get(kind_name, 0.0) + point.duration
                )
                kind_points[kind_name] = kind_points.get(kind_name, 0) + 1
                pending_writes.extend(point.writes)

            for root, lo, hi, mem_uid in pending_writes:
                coherence.root(root).write(lo, hi, mem_uid, launch_finish)

            finish[launch.uid] = launch_finish
            kind_finish[kind_name] = max(
                kind_finish.get(kind_name, 0.0), launch_finish
            )
            makespan = max(makespan, launch_finish)

        state.makespan = makespan
        end = len(order)
        if end not in snapshots:
            # Stored by reference, not cloned: the run is over, so this
            # state is never mutated again — a future run that restores
            # from it clones it first, like any other snapshot.
            snapshots[end] = state
        self._base = {
            kind_name: mapping.decision(kind_name).key()
            for kind_name in self._first_index
        }

        return ExecutionReport(
            makespan=state.makespan,
            kind_busy=state.kind_busy,
            kind_points=state.kind_points,
            kind_finish=state.kind_finish,
            copy_stats=state.copy_stats,
            footprint=state.coherence.footprint(),
            proc_busy={
                name: timeline.busy_time
                for name, timeline in state.procs.items()
            },
        )
