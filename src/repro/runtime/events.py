"""Resource timelines for the discrete-event execution model.

The executor processes launches in topological order and point tasks in
deterministic order, so the only machinery needed from a classical
event queue is *resource availability tracking*: every processor and
every channel is a serially-reusable resource with a ``free_at`` time.
:class:`ResourceTimeline` records reservations and exposes utilisation
statistics for the simulation report.

This "list-scheduling over resource timelines" formulation is equivalent
to an event-heap simulation for graphs whose ready order is fixed by the
scheduler (ours is: Legion dispatches in dependence order), and it is
several times faster — which matters, since a CCD search simulates
hundreds of mappings.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

__all__ = ["ResourceTimeline", "TimelinePool"]


@dataclass
class ResourceTimeline:
    """Availability tracking for one serially-reusable resource."""

    name: str
    free_at: float = 0.0
    busy_time: float = 0.0
    reservations: int = 0

    def reserve(self, ready: float, duration: float) -> Tuple[float, float]:
        """Reserve the resource for ``duration`` seconds no earlier than
        ``ready``; returns ``(start, finish)``."""
        if duration < 0:
            raise ValueError(f"{self.name}: negative duration")
        start = max(ready, self.free_at)
        finish = start + duration
        self.free_at = finish
        self.busy_time += duration
        self.reservations += 1
        return start, finish

    def utilization(self, makespan: float) -> float:
        """Busy fraction over ``makespan`` (0 when makespan is 0)."""
        if makespan <= 0:
            return 0.0
        return min(1.0, self.busy_time / makespan)

    def clone(self) -> "ResourceTimeline":
        """An independent copy (incremental-simulation snapshots)."""
        return ResourceTimeline(
            name=self.name,
            free_at=self.free_at,
            busy_time=self.busy_time,
            reservations=self.reservations,
        )


class TimelinePool:
    """A keyed collection of resource timelines (procs, channels)."""

    def __init__(self) -> None:
        self._timelines: Dict[str, ResourceTimeline] = {}

    def get(self, name: str) -> ResourceTimeline:
        timeline = self._timelines.get(name)
        if timeline is None:
            timeline = ResourceTimeline(name)
            self._timelines[name] = timeline
        return timeline

    def reserve(self, name: str, ready: float, duration: float) -> Tuple[float, float]:
        return self.get(name).reserve(ready, duration)

    def free_at(self, name: str) -> float:
        timeline = self._timelines.get(name)
        return timeline.free_at if timeline else 0.0

    def items(self) -> List[Tuple[str, ResourceTimeline]]:
        return sorted(self._timelines.items())

    def total_busy(self, prefix: str = "") -> float:
        """Total busy seconds across resources whose name starts with
        ``prefix``."""
        return sum(
            t.busy_time
            for name, t in self._timelines.items()
            if name.startswith(prefix)
        )

    def clone(self) -> "TimelinePool":
        """An independent copy of every timeline, preserving creation
        order (incremental-simulation snapshots)."""
        pool = TimelinePool()
        pool._timelines = {
            name: timeline.clone()
            for name, timeline in self._timelines.items()
        }
        return pool
