"""Dependence-driven execution of a mapped task graph.

List-scheduling semantics over resource timelines:

1. launches are processed in topological order; a launch may not start
   before all its dependence predecessors finished (group-level barrier,
   matching the iteration-synchronous structure of the benchmark
   applications);
2. each point task first materialises its argument data: the coherence
   layer plans the copies implied by the mapping and the copy engine
   schedules them on the contended channel graph;
3. the point then occupies its processor for
   ``launch_overhead + flops/throughput + Σ bytes/access_bandwidth``
   — the roofline-style cost model whose memory term makes a GPU task
   reading Zero-Copy memory run ~50× slower than reading its frame
   buffer, the paper's central trade-off;
4. written shards update the authoritative instance locations,
   invalidating stale replicas.

The executor is fully deterministic; run-to-run variation is layered on
top by :class:`repro.runtime.noise.NoiseModel`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.machine.kinds import ProcKind
from repro.machine.model import Machine
from repro.machine.topology import Topology
from repro.mapping.mapping import Mapping
from repro.runtime.copies import CopyEngine, CopyStats
from repro.runtime.events import TimelinePool
from repro.runtime.instances import CoherenceState
from repro.runtime.placement import Placer
from repro.taskgraph.graph import TaskGraph

if TYPE_CHECKING:  # recorder is optional observability plumbing
    from repro.obs.trace import TraceRecorder

__all__ = ["ExecutionReport", "Executor"]


@dataclass
class ExecutionReport:
    """Everything one deterministic execution produced."""

    makespan: float
    #: total point-task busy seconds per task kind (the profiling signal
    #: CD/CCD use to order tasks "by runtime", paper Alg. 1 line 6).
    kind_busy: Dict[str, float] = field(default_factory=dict)
    #: number of point tasks executed per kind.
    kind_points: Dict[str, int] = field(default_factory=dict)
    #: finish time of the last launch of each kind (per-component
    #: makespans, e.g. the high-fidelity-only time of §5.1).
    kind_finish: Dict[str, float] = field(default_factory=dict)
    copy_stats: CopyStats = field(default_factory=CopyStats)
    #: resident bytes per concrete memory at the end of execution.
    footprint: Dict[str, int] = field(default_factory=dict)
    #: busy seconds per concrete processor.
    proc_busy: Dict[str, float] = field(default_factory=dict)

    def kind_mean_point_time(self, kind_name: str) -> float:
        points = self.kind_points.get(kind_name, 0)
        if points == 0:
            return 0.0
        return self.kind_busy.get(kind_name, 0.0) / points


class Executor:
    """Executes a task graph under a mapping; reusable across mappings."""

    def __init__(self, graph: TaskGraph, machine: Machine) -> None:
        self.graph = graph
        self.machine = machine
        self.placer = Placer(machine)
        self.topology = Topology(machine)
        self._order = graph.topological_order()

    # ------------------------------------------------------------------
    def run(
        self,
        mapping: Mapping,
        recorder: Optional["TraceRecorder"] = None,
    ) -> ExecutionReport:
        """One deterministic execution; assumes the mapping is valid and
        fits in memory (checked by the simulator facade).

        ``recorder`` optionally collects task/copy/overhead spans for
        the observability layer.  Recording is purely observational —
        every recorded timestamp is a value this method computed anyway,
        so traced and untraced executions are identical.
        """
        procs = TimelinePool()
        channels = TimelinePool()
        copy_engine = CopyEngine(self.topology, channels, recorder=recorder)
        coherence = CoherenceState()
        finish: Dict[str, float] = {}
        kind_busy: Dict[str, float] = {}
        kind_points: Dict[str, int] = {}
        kind_finish: Dict[str, float] = {}
        makespan = 0.0

        for launch in self._order:
            decision = mapping.decision(launch.kind.name)
            placements = self.placer.place_launch(launch, decision)
            ready_base = 0.0
            for dep in self.graph.predecessors(launch.uid):
                ready_base = max(ready_base, finish.get(dep.src, 0.0))

            pending_writes: List[Tuple[str, int, int, str, int]] = []
            launch_finish = 0.0
            point_flops = launch.flops / launch.size
            gpu_adjust = (
                launch.kind.gpu_speedup
                if decision.proc_kind == ProcKind.GPU
                else 1.0
            )

            for placement in placements:
                data_ready = ready_base
                access_seconds = 0.0
                for slot_index, slot in enumerate(launch.kind.slots):
                    mem = placement.mems[slot_index]
                    lo, hi = launch.shard_interval(
                        slot_index, placement.point, for_write=False
                    )
                    root = launch.args[slot_index].root
                    assert root is not None
                    seg_map = coherence.root(root)

                    if slot.privilege.reads and hi > lo:
                        local_ready, copies = seg_map.plan_read(
                            lo, hi, mem.uid
                        )
                        data_ready = max(data_ready, local_ready)
                        for need in copies:
                            done = copy_engine.execute(
                                need, mem.uid, ready_base
                            )
                            seg_map.commit_cache(
                                need.lo, need.hi, mem.uid, done
                            )
                            data_ready = max(data_ready, done)

                    # Streaming access cost: read and write passes each
                    # move the shard once over the processor<->memory link.
                    link = self.machine.access_link(
                        placement.proc.uid, mem.uid
                    )
                    if link is None:
                        raise ValueError(
                            f"{placement.proc.uid} cannot access {mem.uid} "
                            "(invalid mapping reached the executor)"
                        )
                    passes = int(slot.privilege.reads) + int(
                        slot.privilege.writes
                    )
                    bytes_pp = launch.arg_bytes_per_point(slot_index)
                    access_seconds += (
                        link.latency + bytes_pp / link.bandwidth
                    ) * passes

                    if slot.privilege.writes:
                        w_lo, w_hi = launch.shard_interval(
                            slot_index, placement.point, for_write=True
                        )
                        if w_hi > w_lo:
                            pending_writes.append(
                                (root, w_lo, w_hi, mem.uid, slot_index)
                            )

                compute_seconds = 0.0
                if point_flops > 0:
                    compute_seconds = point_flops / (
                        placement.proc.throughput * gpu_adjust
                    )
                duration = (
                    placement.proc.launch_overhead
                    + compute_seconds
                    + access_seconds
                )
                point_start, point_finish = procs.reserve(
                    placement.proc.uid, data_ready, duration
                )
                if recorder is not None:
                    recorder.record_task(
                        launch.kind.name,
                        placement.proc.uid,
                        point_start,
                        duration,
                        point=placement.point,
                        compute=compute_seconds,
                        access=access_seconds,
                        overhead=placement.proc.launch_overhead,
                    )
                launch_finish = max(launch_finish, point_finish)
                kind_busy[launch.kind.name] = (
                    kind_busy.get(launch.kind.name, 0.0) + duration
                )
                kind_points[launch.kind.name] = (
                    kind_points.get(launch.kind.name, 0) + 1
                )

            # Writes become visible when the whole group finished — point
            # tasks of a group are independent, so intra-group reads must
            # not observe intra-group writes.
            for root, lo, hi, mem_uid, _slot in pending_writes:
                coherence.root(root).write(lo, hi, mem_uid, launch_finish)

            finish[launch.uid] = launch_finish
            kind_finish[launch.kind.name] = max(
                kind_finish.get(launch.kind.name, 0.0), launch_finish
            )
            makespan = max(makespan, launch_finish)

        if recorder is not None:
            recorder.finalize(makespan)
        return ExecutionReport(
            makespan=makespan,
            kind_busy=kind_busy,
            kind_points=kind_points,
            kind_finish=kind_finish,
            copy_stats=copy_engine.stats,
            footprint=coherence.footprint(),
            proc_busy={
                name: timeline.busy_time for name, timeline in procs.items()
            },
        )
