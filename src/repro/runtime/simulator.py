"""The simulator facade: validate → capacity-check → execute → (noise).

:class:`Simulator` is the runtime stand-in the rest of the system talks
to.  It combines mapping validation (constraint 1), the memory planner
(OOM / spill), the deterministic executor, and the noise model, and it
memoises deterministic results per mapping so that AutoMap's repeated
measurements of one mapping (7 during search, 31 for final reporting)
cost one execution plus cheap noise draws.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.machine.model import Machine
from repro.mapping.mapping import Mapping
from repro.mapping.validate import MappingError, validate
from repro.runtime.executor import ExecutionReport, Executor
from repro.runtime.memory import MemoryPlanner, OOMError
from repro.runtime.noise import NoiseModel
from repro.taskgraph.graph import TaskGraph

__all__ = ["SimConfig", "SimResult", "Simulator", "OOMError"]


@dataclass(frozen=True)
class SimConfig:
    """Simulator configuration.

    Attributes
    ----------
    noise_sigma:
        Log-space σ of run-to-run noise (0 disables noise).
    seed:
        Root seed of the noise stream.
    spill:
        When True, mappings whose instances overflow a memory are
        demoted along the priority list (§3.1) instead of failing —
        the behaviour of the default mapper's "collections that fit".
        When False, overflow raises :class:`OOMError` — the behaviour
        AutoMap's search relies on in the memory-constrained
        experiments (§5.2).
    """

    noise_sigma: float = 0.04
    seed: int = 0
    spill: bool = False


@dataclass
class SimResult:
    """Result of simulating one mapping."""

    #: Deterministic makespan in seconds (no noise).
    makespan: float
    #: The mapping actually executed (differs from the requested one when
    #: spill demotions were applied).
    executed_mapping: Mapping
    report: ExecutionReport
    #: Noisy measurement samples, when requested.
    samples: List[float] = field(default_factory=list)

    @property
    def mean(self) -> float:
        if not self.samples:
            return self.makespan
        return sum(self.samples) / len(self.samples)


class Simulator:
    """Runs mappings of one task graph on one machine."""

    def __init__(
        self,
        graph: TaskGraph,
        machine: Machine,
        config: Optional[SimConfig] = None,
    ) -> None:
        self.graph = graph
        self.machine = machine
        self.config = config or SimConfig()
        self.noise = NoiseModel(self.config.noise_sigma, self.config.seed)
        self._executor = Executor(graph, machine)
        self._planner = MemoryPlanner(graph, machine)
        self._cache: Dict[tuple, SimResult] = {}
        #: Deterministic executions performed (cache misses) — used by
        #: search-efficiency statistics.
        self.executions = 0
        #: Cache-miss runs that died in the memory planner (spill
        #: disabled).  ``executions + oom_attempts`` is the number of
        #: novel mappings the runtime machinery had to process — the
        #: quantity the static feasibility pass exists to reduce.
        self.oom_attempts = 0

    # ------------------------------------------------------------------
    def run(self, mapping: Mapping, runs: int = 0) -> SimResult:
        """Simulate ``mapping``; optionally draw ``runs`` noisy samples.

        Raises
        ------
        MappingError
            If the mapping violates addressability/variant constraints.
        OOMError
            If instances overflow a memory and spill is disabled.
        """
        validate(self.graph, self.machine, mapping)
        key = mapping.key()
        cached = self._cache.get(key)
        if cached is None:
            executed = mapping
            if self.config.spill:
                executed = self._planner.apply_spill(mapping)
            else:
                try:
                    self._planner.ensure_fits(mapping)
                except OOMError:
                    self.oom_attempts += 1
                    raise
            report = self._executor.run(executed)
            cached = SimResult(
                makespan=report.makespan,
                executed_mapping=executed,
                report=report,
            )
            self._cache[key] = cached
            self.executions += 1
        if runs > 0:
            samples = self.noise.samples(cached.makespan, key, runs)
        else:
            samples = []
        return SimResult(
            makespan=cached.makespan,
            executed_mapping=cached.executed_mapping,
            report=cached.report,
            samples=samples,
        )

    # ------------------------------------------------------------------
    def spill_plan(self, mapping: Mapping) -> Mapping:
        """The mapping that :meth:`run` would actually execute.

        With spill enabled this applies the planner's demotions (no
        execution); otherwise it checks capacity (raising
        :class:`OOMError` like :meth:`run` would, but without touching
        the ``oom_attempts`` counter — this is a static query, not an
        attempted execution) and returns the mapping unchanged.  The
        bound-pruning layer prices *this* mapping, since the simulated
        makespan belongs to it.
        """
        cached = self._cache.get(mapping.key())
        if cached is not None:
            return cached.executed_mapping
        if self.config.spill:
            return self._planner.apply_spill(mapping)
        self._planner.ensure_fits(mapping)
        return mapping

    # ------------------------------------------------------------------
    # Deterministic-result cache plumbing (used by repro.parallel to
    # absorb results computed in worker processes).
    # ------------------------------------------------------------------
    def cached(self, mapping: Mapping) -> Optional[SimResult]:
        """The memoised deterministic result for ``mapping``, if any."""
        return self._cache.get(mapping.key())

    def preload(self, mapping: Mapping, result: SimResult) -> bool:
        """Insert an externally-computed deterministic result into the
        memo cache, so a later :meth:`run` of the same mapping is a pure
        cache hit (plus noise draws).  The result must have been produced
        by an identically-configured simulator — e.g. by a worker process
        that rebuilt this simulator from its picklable spec.  Counts as
        one execution when actually inserted; returns False when the
        mapping was already cached."""
        key = mapping.key()
        if key in self._cache:
            return False
        self._cache[key] = SimResult(
            makespan=result.makespan,
            executed_mapping=result.executed_mapping,
            report=result.report,
        )
        self.executions += 1
        return True

    # ------------------------------------------------------------------
    def trace(self, mapping: Mapping, label: str = ""):
        """Re-execute ``mapping`` with a span recorder attached.

        Returns ``(recorder, result)`` where the recorder holds the
        task / copy / launch-overhead spans of one deterministic
        execution (see :mod:`repro.obs.trace`) and ``result`` is a fresh
        :class:`SimResult` (no noise samples).

        Tracing is deliberately kept *off* the hot path: the memoised
        :meth:`run` never records, so searches pay zero overhead, and
        this method never reads or writes the memo cache or the
        ``executions`` counter, so a traced session's accounting — and
        therefore its report — is byte-identical to an untraced one.
        The executor is deterministic, so the traced makespan equals the
        cached one exactly.
        """
        from repro.obs.trace import TraceRecorder

        validate(self.graph, self.machine, mapping)
        executed = mapping
        if self.config.spill:
            executed = self._planner.apply_spill(mapping)
        else:
            self._planner.ensure_fits(mapping)
        recorder = TraceRecorder(label=label)
        report = self._executor.run(executed, recorder=recorder)
        result = SimResult(
            makespan=report.makespan,
            executed_mapping=executed,
            report=report,
        )
        return recorder, result

    # ------------------------------------------------------------------
    def memory_demand(self, mapping: Mapping):
        """Static footprint report for ``mapping`` (no execution)."""
        validate(self.graph, self.machine, mapping)
        return self._planner.check(mapping)

    def clear_cache(self) -> None:
        self._cache.clear()
