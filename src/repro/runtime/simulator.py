"""The simulator facade: validate → capacity-check → execute → (noise).

:class:`Simulator` is the runtime stand-in the rest of the system talks
to.  It combines mapping validation (constraint 1), the memory planner
(OOM / spill), the deterministic executor, and the noise model, and it
memoises deterministic results per mapping so that AutoMap's repeated
measurements of one mapping (7 during search, 31 for final reporting)
cost one execution plus cheap noise draws.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.machine.model import Machine
from repro.mapping.mapping import Mapping
from repro.mapping.validate import MappingError, validate
from repro.runtime.executor import ExecutionReport, Executor
from repro.runtime.incremental import IncrementalEngine, IncrementalStats
from repro.runtime.memory import MemoryPlanner, OOMError
from repro.runtime.noise import NoiseModel
from repro.taskgraph.graph import TaskGraph

__all__ = ["SimConfig", "SimResult", "Simulator", "OOMError"]


@dataclass(frozen=True)
class SimConfig:
    """Simulator configuration.

    Attributes
    ----------
    noise_sigma:
        Log-space σ of run-to-run noise (0 disables noise).
    seed:
        Root seed of the noise stream.
    spill:
        When True, mappings whose instances overflow a memory are
        demoted along the priority list (§3.1) instead of failing —
        the behaviour of the default mapper's "collections that fit".
        When False, overflow raises :class:`OOMError` — the behaviour
        AutoMap's search relies on in the memory-constrained
        experiments (§5.2).
    incremental:
        When True (the default), untraced executions run through the
        incremental engine (prefix replay + per-launch cost memoisation,
        see :mod:`repro.runtime.incremental`), spill plans and noise
        factors are memoised, and repeated validations of one mapping
        key are deduplicated.  Results are byte-identical to the full
        path; ``--no-incremental`` turns the whole bundle off, which is
        what the CI identity gate measures against.
    """

    noise_sigma: float = 0.04
    seed: int = 0
    spill: bool = False
    incremental: bool = True


@dataclass
class SimResult:
    """Result of simulating one mapping."""

    #: Deterministic makespan in seconds (no noise).
    makespan: float
    #: The mapping actually executed (differs from the requested one when
    #: spill demotions were applied).
    executed_mapping: Mapping
    report: ExecutionReport
    #: Noisy measurement samples, when requested.
    samples: List[float] = field(default_factory=list)

    @property
    def mean(self) -> float:
        if not self.samples:
            return self.makespan
        return sum(self.samples) / len(self.samples)


class Simulator:
    """Runs mappings of one task graph on one machine."""

    def __init__(
        self,
        graph: TaskGraph,
        machine: Machine,
        config: Optional[SimConfig] = None,
    ) -> None:
        self.graph = graph
        self.machine = machine
        self.config = config or SimConfig()
        incremental = self.config.incremental
        self.noise = NoiseModel(
            self.config.noise_sigma, self.config.seed, cache=incremental
        )
        self._executor = Executor(graph, machine)
        self._planner = MemoryPlanner(graph, machine, memoize=incremental)
        self._engine: Optional[IncrementalEngine] = (
            IncrementalEngine(graph, machine) if incremental else None
        )
        #: Incremental-effectiveness counters (all-zero when the engine
        #: is disabled).  Kept out of the oracle's metrics registry so
        #: checkpoints stay byte-identical across the two modes.
        self.incremental_stats: IncrementalStats = (
            self._engine.stats if self._engine else IncrementalStats()
        )
        self._cache: Dict[tuple, SimResult] = {}
        #: Memoised spill resolutions (successful plans only, so the
        #: OOM-raising paths keep their counter semantics); ``None``
        #: when incremental caching is off.
        self._spill_cache: Optional[Dict[tuple, Mapping]] = (
            {} if incremental else None
        )
        #: Mapping keys already validated (validation is pure per key).
        self._validated: Optional[Set[tuple]] = set() if incremental else None
        #: Deterministic executions performed (cache misses) — used by
        #: search-efficiency statistics.
        self.executions = 0
        #: Cache-miss runs that died in the memory planner (spill
        #: disabled).  ``executions + oom_attempts`` is the number of
        #: novel mappings the runtime machinery had to process — the
        #: quantity the static feasibility pass exists to reduce.
        self.oom_attempts = 0

    # ------------------------------------------------------------------
    def run(self, mapping: Mapping, runs: int = 0) -> SimResult:
        """Simulate ``mapping``; optionally draw ``runs`` noisy samples.

        Raises
        ------
        MappingError
            If the mapping violates addressability/variant constraints.
        OOMError
            If instances overflow a memory and spill is disabled.
        """
        key = mapping.key()
        self._validate(mapping, key)
        cached = self._cache.get(key)
        if cached is None:
            try:
                executed = self._resolve_spill(mapping, key)
            except OOMError:
                if not self.config.spill:
                    self.oom_attempts += 1
                raise
            if self._engine is not None:
                report = self._engine.run(executed)
            else:
                report = self._executor.run(executed)
            cached = SimResult(
                makespan=report.makespan,
                executed_mapping=executed,
                report=report,
            )
            self._cache[key] = cached
            self.executions += 1
        if runs > 0:
            samples = self.noise.samples(cached.makespan, key, runs)
        else:
            samples = []
        return SimResult(
            makespan=cached.makespan,
            executed_mapping=cached.executed_mapping,
            report=cached.report,
            samples=samples,
        )

    # ------------------------------------------------------------------
    def _validate(self, mapping: Mapping, key: tuple) -> None:
        """Validate ``mapping``, skipping keys already known valid.

        Validation is a pure function of the mapping key, so the dedup
        cannot change outcomes; invalid mappings raise before the key is
        recorded and therefore re-raise on every call, like the uncached
        path.
        """
        if self._validated is not None and key in self._validated:
            return
        validate(self.graph, self.machine, mapping)
        if self._validated is not None:
            self._validated.add(key)

    def _resolve_spill(self, mapping: Mapping, key: tuple) -> Mapping:
        """The mapping execution would actually run, memoised per key.

        Only successful resolutions are cached: OOM outcomes re-raise on
        every call, preserving the counter semantics of the callers.
        """
        if self._spill_cache is not None:
            cached = self._spill_cache.get(key)
            if cached is not None:
                return cached
        if self.config.spill:
            executed = self._planner.apply_spill(mapping)
        else:
            self._planner.ensure_fits(mapping)
            executed = mapping
        if self._spill_cache is not None:
            self._spill_cache[key] = executed
        return executed

    # ------------------------------------------------------------------
    def spill_plan(self, mapping: Mapping) -> Mapping:
        """The mapping that :meth:`run` would actually execute.

        With spill enabled this applies the planner's demotions (no
        execution); otherwise it checks capacity (raising
        :class:`OOMError` like :meth:`run` would, but without touching
        the ``oom_attempts`` counter — this is a static query, not an
        attempted execution) and returns the mapping unchanged.  The
        bound-pruning layer prices *this* mapping, since the simulated
        makespan belongs to it.
        """
        key = mapping.key()
        cached = self._cache.get(key)
        if cached is not None:
            return cached.executed_mapping
        return self._resolve_spill(mapping, key)

    # ------------------------------------------------------------------
    # Deterministic-result cache plumbing (used by repro.parallel to
    # absorb results computed in worker processes).
    # ------------------------------------------------------------------
    def cached(self, mapping: Mapping) -> Optional[SimResult]:
        """The memoised deterministic result for ``mapping``, if any."""
        return self._cache.get(mapping.key())

    def preload(self, mapping: Mapping, result: SimResult) -> bool:
        """Insert an externally-computed deterministic result into the
        memo cache, so a later :meth:`run` of the same mapping is a pure
        cache hit (plus noise draws).  The result must have been produced
        by an identically-configured simulator — e.g. by a worker process
        that rebuilt this simulator from its picklable spec.  Counts as
        one execution when actually inserted; returns False when the
        mapping was already cached."""
        key = mapping.key()
        if key in self._cache:
            return False
        self._cache[key] = SimResult(
            makespan=result.makespan,
            executed_mapping=result.executed_mapping,
            report=result.report,
        )
        self.executions += 1
        return True

    # ------------------------------------------------------------------
    def trace(self, mapping: Mapping, label: str = ""):
        """Re-execute ``mapping`` with a span recorder attached.

        Returns ``(recorder, result)`` where the recorder holds the
        task / copy / launch-overhead spans of one deterministic
        execution (see :mod:`repro.obs.trace`) and ``result`` is a fresh
        :class:`SimResult` (no noise samples).

        Tracing is deliberately kept *off* the hot path: the memoised
        :meth:`run` never records, so searches pay zero overhead, and
        this method never reads or writes the memo cache or the
        ``executions`` counter, so a traced session's accounting — and
        therefore its report — is byte-identical to an untraced one.
        The executor is deterministic, so the traced makespan equals the
        cached one exactly.
        """
        from repro.obs.trace import TraceRecorder

        key = mapping.key()
        self._validate(mapping, key)
        executed = self._resolve_spill(mapping, key)
        recorder = TraceRecorder(label=label)
        report = self._executor.run(executed, recorder=recorder)
        result = SimResult(
            makespan=report.makespan,
            executed_mapping=executed,
            report=report,
        )
        return recorder, result

    # ------------------------------------------------------------------
    def memory_demand(self, mapping: Mapping):
        """Static footprint report for ``mapping`` (no execution)."""
        validate(self.graph, self.machine, mapping)
        return self._planner.check(mapping)

    def clear_cache(self) -> None:
        self._cache.clear()
        if self._spill_cache is not None:
            self._spill_cache.clear()
        if self._validated is not None:
            self._validated.clear()
