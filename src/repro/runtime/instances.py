"""Physical instances and data coherence.

Legion semantics (paper §2): a mapping "may imply data movement not
explicit in the task graph" — when a producer writes a collection into
memory ``m1`` and a consumer is mapped to read it from ``m2 ≠ m1``, the
data must be copied before the consumer starts.

Because collections can overlap (halos), validity is tracked on the
underlying logical *root* index spaces, not per collection: each root is
a segment map assigning to every byte range the memory holding the
authoritative copy, the time it was produced, and any cached read
replicas.  Reads then cost exactly the copies Legion would issue, halo
exchanges included, and repeated readers of a cached instance cost
nothing — the dedup the paper relies on when co-locating shared
collections.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = ["CopyNeed", "Segment", "SegmentMap", "CoherenceState"]


@dataclass(frozen=True)
class CopyNeed:
    """One pending copy: bytes ``[lo, hi)`` of a root from ``src_mem``,
    available there at ``src_time``."""

    src_mem: str
    lo: int
    hi: int
    src_time: float

    @property
    def nbytes(self) -> int:
        return self.hi - self.lo


@dataclass
class Segment:
    """State of one byte range of a root index space."""

    lo: int
    hi: int
    auth_mem: Optional[str]  # None => never written (virgin data)
    auth_time: float
    caches: Dict[str, float] = field(default_factory=dict)

    def clone_range(self, lo: int, hi: int) -> "Segment":
        return Segment(
            lo=lo,
            hi=hi,
            auth_mem=self.auth_mem,
            auth_time=self.auth_time,
            caches=dict(self.caches),
        )

    def ready_in(self, mem: str) -> Optional[float]:
        """Time this segment's data is available in ``mem`` (None if not
        resident there)."""
        if self.auth_mem == mem:
            return self.auth_time
        return self.caches.get(mem)


class SegmentMap:
    """Disjoint, sorted segments covering the written/read parts of one
    root index space.

    Segments are kept sorted by ``lo`` with a parallel offset list, so
    every operation locates its range by bisection instead of scanning
    the whole map."""

    def __init__(self) -> None:
        self._segments: List[Segment] = []
        self._los: List[int] = []

    # ------------------------------------------------------------------
    def _split_at(self, pos: int) -> None:
        """Ensure no segment straddles ``pos``."""
        i = bisect_right(self._los, pos) - 1
        if i >= 0:
            seg = self._segments[i]
            if seg.lo < pos < seg.hi:
                left = seg.clone_range(seg.lo, pos)
                right = seg.clone_range(pos, seg.hi)
                self._segments[i : i + 1] = [left, right]
                self._los.insert(i + 1, pos)

    def _overlapping(self, lo: int, hi: int) -> List[Segment]:
        i = bisect_left(self._los, lo)
        if i > 0 and self._segments[i - 1].hi > lo:
            i -= 1
        out: List[Segment] = []
        n = len(self._segments)
        while i < n:
            seg = self._segments[i]
            if seg.lo >= hi:
                break
            if seg.hi > lo:
                out.append(seg)
            i += 1
        return out

    # ------------------------------------------------------------------
    def write(self, lo: int, hi: int, mem: str, time: float) -> None:
        """Record a write of ``[lo, hi)`` into ``mem`` finishing at
        ``time``: the written range's authoritative copy moves to ``mem``
        and all caches of it are invalidated."""
        if hi <= lo:
            return
        self._split_at(lo)
        self._split_at(hi)
        # After splitting, every segment is either disjoint from
        # ``[lo, hi)`` or contained in it.
        i = bisect_left(self._los, lo)
        j = i
        n = len(self._segments)
        while j < n and self._segments[j].lo < hi:
            j += 1
        self._segments[i:j] = [
            Segment(lo=lo, hi=hi, auth_mem=mem, auth_time=time)
        ]
        self._los[i:j] = [lo]

    def plan_read(
        self, lo: int, hi: int, dst_mem: str
    ) -> Tuple[float, List[CopyNeed]]:
        """What it takes to make ``[lo, hi)`` valid in ``dst_mem``.

        Returns ``(ready_time, copies)``: ``ready_time`` is the latest
        availability among parts already resident in ``dst_mem``; ``copies``
        lists the byte ranges that must be fetched (from their
        authoritative memories).  Ranges never written anywhere (virgin
        input data) are materialised in place for free — the simulator
        measures warmed steady-state iterations, like the paper's
        per-iteration timings.
        """
        if hi <= lo:
            return 0.0, []
        self._split_at(lo)
        self._split_at(hi)
        ready = 0.0
        copies: List[CopyNeed] = []
        covered = lo
        for seg in self._overlapping(lo, hi):
            if seg.lo > covered:
                # Virgin gap: materialize in dst for free.
                self.write(covered, seg.lo, dst_mem, 0.0)
            covered = max(covered, seg.hi)
            local = seg.ready_in(dst_mem)
            if local is not None:
                ready = max(ready, local)
            elif seg.auth_mem is None:
                seg.caches[dst_mem] = 0.0
            else:
                copies.append(
                    CopyNeed(
                        src_mem=seg.auth_mem,
                        lo=max(seg.lo, lo),
                        hi=min(seg.hi, hi),
                        src_time=seg.auth_time,
                    )
                )
        if covered < hi:
            self.write(covered, hi, dst_mem, 0.0)
        return ready, copies

    def commit_cache(self, lo: int, hi: int, mem: str, time: float) -> None:
        """Record that ``[lo, hi)`` now has a valid replica in ``mem``
        as of ``time`` (after a planned copy completed)."""
        if hi <= lo:
            return
        self._split_at(lo)
        self._split_at(hi)
        for seg in self._overlapping(lo, hi):
            seg.caches[mem] = time

    # ------------------------------------------------------------------
    def footprint(self) -> Dict[str, int]:
        """Bytes resident per memory (authoritative + cached replicas)."""
        out: Dict[str, int] = {}
        for seg in self._segments:
            size = seg.hi - seg.lo
            if seg.auth_mem is not None:
                out[seg.auth_mem] = out.get(seg.auth_mem, 0) + size
            for mem in seg.caches:
                out[mem] = out.get(mem, 0) + size
        return out

    @property
    def num_segments(self) -> int:
        return len(self._segments)

    def clone(self) -> "SegmentMap":
        """An independent deep copy preserving segment order and each
        segment's cache-dict insertion order (incremental snapshots)."""
        copy = SegmentMap()
        copy._segments = [
            seg.clone_range(seg.lo, seg.hi) for seg in self._segments
        ]
        copy._los = list(self._los)
        return copy


class CoherenceState:
    """Coherence over all root index spaces of a task graph."""

    def __init__(self) -> None:
        self._roots: Dict[str, SegmentMap] = {}

    def root(self, name: str) -> SegmentMap:
        seg_map = self._roots.get(name)
        if seg_map is None:
            seg_map = SegmentMap()
            self._roots[name] = seg_map
        return seg_map

    def footprint(self) -> Dict[str, int]:
        """Total resident bytes per memory across all roots."""
        out: Dict[str, int] = {}
        for seg_map in self._roots.values():
            for mem, size in seg_map.footprint().items():
                out[mem] = out.get(mem, 0) + size
        return out

    def clone(self) -> "CoherenceState":
        """An independent deep copy preserving root creation order
        (incremental snapshots)."""
        copy = CoherenceState()
        copy._roots = {
            name: seg_map.clone() for name, seg_map in self._roots.items()
        }
        return copy
