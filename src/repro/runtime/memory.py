"""Memory-capacity accounting, OOM detection, and the spill fallback.

The paper (§3.1) allows mappings "to fail at runtime if a collection
assignment exceeds the capacity of the physical memory", and generalises
a mapping to "a priority list of memories ... where the first memory that
can hold c will be used".  Both behaviours live here:

* :meth:`MemoryPlanner.check` computes the steady-state footprint each
  concrete memory would hold under a mapping and reports overflows — the
  evaluation oracle turns those into failed evaluations (§5.2: AutoMap
  "detect[s] when a mapping results in an out of memory error and mov[es]
  on to a different mapping");
* :meth:`MemoryPlanner.apply_spill` realises the priority-list fallback:
  walking launches in program order, each collection-argument slot keeps
  its mapped memory kind if the instance fits and is demoted to the next
  memory kind in the processor's preference order otherwise.  This is how
  the default mapper's "collections (that fit) are placed in Frame-Buffer
  memory" behaves.

Footprints are unions of byte intervals per (root index space, concrete
memory), so overlapping collections are not double-counted and replicated
arguments are counted once per memory, matching how a runtime shares
physical instances.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.machine.kinds import MemKind, addressable_mem_kinds
from repro.machine.model import Machine
from repro.mapping.mapping import Mapping
from repro.runtime.intervals import IntervalSet
from repro.runtime.placement import Placer
from repro.taskgraph.graph import TaskGraph
from repro.util.units import format_bytes

__all__ = ["OOMError", "MemoryDemand", "MemoryPlanner"]


class OOMError(RuntimeError):
    """A mapping's footprint exceeds some memory's physical capacity."""


@dataclass
class MemoryDemand:
    """Steady-state footprint report for one mapping."""

    #: bytes demanded per concrete memory uid.
    per_memory: Dict[str, int] = field(default_factory=dict)
    #: memories whose demand exceeds capacity: uid -> (demand, capacity).
    overflows: Dict[str, Tuple[int, int]] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.overflows

    def describe(self) -> str:
        lines = []
        for uid in sorted(self.per_memory):
            demand = self.per_memory[uid]
            marker = " OVERFLOW" if uid in self.overflows else ""
            lines.append(f"{uid}: {format_bytes(demand)}{marker}")
        return "\n".join(lines)

    def oom_message(self) -> str:
        """The canonical OOM reason for this demand.  Shared by the
        runtime planner and the static feasibility pass so a statically
        proven OOM carries a byte-identical reason string."""
        details = ", ".join(
            f"{uid} needs {format_bytes(need)} of {format_bytes(cap)}"
            for uid, (need, cap) in sorted(self.overflows.items())
        )
        return f"mapping exceeds memory capacity: {details}"


class _FootprintAccumulator:
    """Incremental union-of-intervals footprint per (memory, root)."""

    def __init__(self, machine: Machine) -> None:
        self._machine = machine
        self._per_mem_root: Dict[Tuple[str, str], IntervalSet] = {}
        self._per_mem_total: Dict[str, int] = {}

    def would_fit(self, mem_uid: str, root: str, lo: int, hi: int) -> bool:
        """Whether adding ``[lo, hi)`` of ``root`` to ``mem_uid`` stays
        within capacity."""
        added = self._added_bytes(mem_uid, root, lo, hi)
        capacity = self._machine.memory(mem_uid).capacity
        return self._per_mem_total.get(mem_uid, 0) + added <= capacity

    def _added_bytes(self, mem_uid: str, root: str, lo: int, hi: int) -> int:
        current = self._per_mem_root.get((mem_uid, root))
        if current is None:
            return hi - lo
        return (hi - lo) - current.overlap(lo, hi)

    def add(self, mem_uid: str, root: str, lo: int, hi: int) -> None:
        key = (mem_uid, root)
        current = self._per_mem_root.get(key, IntervalSet.empty())
        added = self._added_bytes(mem_uid, root, lo, hi)
        self._per_mem_root[key] = current.union(IntervalSet.single(lo, hi))
        self._per_mem_total[mem_uid] = (
            self._per_mem_total.get(mem_uid, 0) + added
        )

    def totals(self) -> Dict[str, int]:
        return dict(self._per_mem_total)


class MemoryPlanner:
    """Static capacity analysis of a mapping on a machine."""

    def __init__(self, graph: TaskGraph, machine: Machine) -> None:
        self.graph = graph
        self.machine = machine
        self._placer = Placer(machine)

    # ------------------------------------------------------------------
    def check(self, mapping: Mapping) -> MemoryDemand:
        """Compute the footprint of ``mapping``; report overflows."""
        acc = _FootprintAccumulator(self.machine)
        for launch in self.graph.launches:
            decision = mapping.decision(launch.kind.name)
            placements = self._placer.place_launch(launch, decision)
            for placement in placements:
                for slot_index, mem in enumerate(placement.mems):
                    lo, hi = launch.shard_interval(
                        slot_index, placement.point, for_write=False
                    )
                    root = launch.args[slot_index].root
                    assert root is not None
                    if hi > lo:
                        acc.add(mem.uid, root, lo, hi)
        demand = MemoryDemand(per_memory=acc.totals())
        for uid, total in demand.per_memory.items():
            capacity = self.machine.memory(uid).capacity
            if total > capacity:
                demand.overflows[uid] = (total, capacity)
        return demand

    def ensure_fits(self, mapping: Mapping) -> None:
        """Raise :class:`OOMError` if the mapping overflows any memory."""
        demand = self.check(mapping)
        if not demand.ok:
            raise OOMError(demand.oom_message())

    # ------------------------------------------------------------------
    def apply_spill(self, mapping: Mapping) -> Mapping:
        """Demote overflowing slots along the priority list (§3.1).

        Slots are considered in program order of their first use; a slot
        that does not fit in its mapped memory kind is demoted — for the
        *whole kind*, keeping the factored-space invariant that all
        launches of a kind share one decision — to the next addressable
        memory kind.  Raises :class:`OOMError` when no kind fits.
        """
        demoted: Dict[Tuple[str, int], MemKind] = {}
        current = mapping
        # Iterate to a fixed point: each pass re-walks program order with
        # the demotions applied; at most (kinds x slots x kinds) passes.
        for _ in range(1 + sum(k.num_slots for k in self.graph.task_kinds) * 2):
            acc = _FootprintAccumulator(self.machine)
            retry = False
            for launch in self.graph.launches:
                decision = current.decision(launch.kind.name)
                placements = self._placer.place_launch(launch, decision)
                for placement in placements:
                    for slot_index, mem in enumerate(placement.mems):
                        lo, hi = launch.shard_interval(
                            slot_index, placement.point, for_write=False
                        )
                        root = launch.args[slot_index].root
                        assert root is not None
                        if hi <= lo:
                            continue
                        if acc.would_fit(mem.uid, root, lo, hi):
                            acc.add(mem.uid, root, lo, hi)
                            continue
                        # Demote this slot to the next preference kind.
                        next_kind = self._next_kind(
                            decision.proc_kind, decision.mem_kinds[slot_index]
                        )
                        if next_kind is None:
                            raise OOMError(
                                f"no memory kind can hold "
                                f"{launch.kind.name}[{slot_index}] "
                                f"({format_bytes(hi - lo)} shard in "
                                f"{mem.uid})"
                            )
                        demoted[(launch.kind.name, slot_index)] = next_kind
                        current = current.with_mem(
                            launch.kind.name, slot_index, next_kind
                        )
                        retry = True
                        break
                    if retry:
                        break
                if retry:
                    break
            if not retry:
                return current
        raise OOMError("spill fallback failed to converge")

    def _next_kind(
        self, proc_kind, mem_kind: MemKind
    ) -> Optional[MemKind]:
        """Next memory kind after ``mem_kind`` in the processor's
        preference order that exists on this machine."""
        order = [
            mk
            for mk in addressable_mem_kinds(proc_kind)
            if mk in self.machine.mem_kinds()
        ]
        try:
            index = order.index(mem_kind)
        except ValueError:
            return order[0] if order else None
        if index + 1 < len(order):
            return order[index + 1]
        return None
