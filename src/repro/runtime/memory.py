"""Memory-capacity accounting, OOM detection, and the spill fallback.

The paper (§3.1) allows mappings "to fail at runtime if a collection
assignment exceeds the capacity of the physical memory", and generalises
a mapping to "a priority list of memories ... where the first memory that
can hold c will be used".  Both behaviours live here:

* :meth:`MemoryPlanner.check` computes the steady-state footprint each
  concrete memory would hold under a mapping and reports overflows — the
  evaluation oracle turns those into failed evaluations (§5.2: AutoMap
  "detect[s] when a mapping results in an out of memory error and mov[es]
  on to a different mapping");
* :meth:`MemoryPlanner.apply_spill` realises the priority-list fallback:
  walking launches in program order, each collection-argument slot keeps
  its mapped memory kind if the instance fits and is demoted to the next
  memory kind in the processor's preference order otherwise.  This is how
  the default mapper's "collections (that fit) are placed in Frame-Buffer
  memory" behaves.

Footprints are unions of byte intervals per (root index space, concrete
memory), so overlapping collections are not double-counted and replicated
arguments are counted once per memory, matching how a runtime shares
physical instances.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.machine.kinds import MemKind, addressable_mem_kinds
from repro.machine.model import Machine
from repro.mapping.mapping import Mapping
from repro.runtime.intervals import IntervalSet
from repro.runtime.placement import Placer
from repro.taskgraph.graph import TaskGraph
from repro.util.units import format_bytes

__all__ = ["OOMError", "MemoryDemand", "MemoryPlanner"]


class OOMError(RuntimeError):
    """A mapping's footprint exceeds some memory's physical capacity."""


@dataclass
class MemoryDemand:
    """Steady-state footprint report for one mapping."""

    #: bytes demanded per concrete memory uid.
    per_memory: Dict[str, int] = field(default_factory=dict)
    #: memories whose demand exceeds capacity: uid -> (demand, capacity).
    overflows: Dict[str, Tuple[int, int]] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.overflows

    def describe(self) -> str:
        lines = []
        for uid in sorted(self.per_memory):
            demand = self.per_memory[uid]
            marker = " OVERFLOW" if uid in self.overflows else ""
            lines.append(f"{uid}: {format_bytes(demand)}{marker}")
        return "\n".join(lines)

    def oom_message(self) -> str:
        """The canonical OOM reason for this demand.  Shared by the
        runtime planner and the static feasibility pass so a statically
        proven OOM carries a byte-identical reason string."""
        details = ", ".join(
            f"{uid} needs {format_bytes(need)} of {format_bytes(cap)}"
            for uid, (need, cap) in sorted(self.overflows.items())
        )
        return f"mapping exceeds memory capacity: {details}"


class _FootprintAccumulator:
    """Incremental union-of-intervals footprint per (memory, root)."""

    def __init__(self, machine: Machine) -> None:
        self._machine = machine
        self._per_mem_root: Dict[Tuple[str, str], IntervalSet] = {}
        self._per_mem_total: Dict[str, int] = {}

    def would_fit(self, mem_uid: str, root: str, lo: int, hi: int) -> bool:
        """Whether adding ``[lo, hi)`` of ``root`` to ``mem_uid`` stays
        within capacity."""
        added = self._added_bytes(mem_uid, root, lo, hi)
        capacity = self._machine.memory(mem_uid).capacity
        return self._per_mem_total.get(mem_uid, 0) + added <= capacity

    def _added_bytes(self, mem_uid: str, root: str, lo: int, hi: int) -> int:
        current = self._per_mem_root.get((mem_uid, root))
        if current is None:
            return hi - lo
        return (hi - lo) - current.overlap(lo, hi)

    def add(self, mem_uid: str, root: str, lo: int, hi: int) -> None:
        key = (mem_uid, root)
        current = self._per_mem_root.get(key, IntervalSet.empty())
        added = self._added_bytes(mem_uid, root, lo, hi)
        self._per_mem_root[key] = current.union(IntervalSet.single(lo, hi))
        self._per_mem_total[mem_uid] = (
            self._per_mem_total.get(mem_uid, 0) + added
        )

    def totals(self) -> Dict[str, int]:
        return dict(self._per_mem_total)


class MemoryPlanner:
    """Static capacity analysis of a mapping on a machine.

    With ``memoize=True`` the per-launch shard lists — pure functions of
    ``(launch, decision)`` — are cached, so repeated capacity walks over
    a search chain skip the placement and interval arithmetic.  The walk
    itself (accumulator operations, demotion order, error messages) is
    unchanged, so memoised and unmemoised planners produce identical
    results byte-for-byte.
    """

    def __init__(
        self, graph: TaskGraph, machine: Machine, memoize: bool = False
    ) -> None:
        self.graph = graph
        self.machine = machine
        self._placer = Placer(machine)
        self._shard_cache: Optional[Dict[tuple, tuple]] = (
            {} if memoize else None
        )
        if memoize:
            #: Kind names in task-kind declaration order, launches only.
            self._launched_kinds = [
                kind.name
                for kind in graph.task_kinds
                if graph.launches_of_kind(kind.name)
            ]
            #: (kind, decision.key()) -> {(mem_uid, root): IntervalSet}
            self._contrib_cache: Dict[tuple, dict] = {}
            #: (mem_uid, root, contributors) -> union size in bytes
            self._union_cache: Dict[tuple, int] = {}
        else:
            self._launched_kinds = []
            self._contrib_cache = {}
            self._union_cache = {}
        #: Decision-independent per-point read shard intervals,
        #: (launch.uid, slot) -> ((lo, hi), ...).
        self._interval_cache: Dict[tuple, tuple] = {}

    def _read_intervals(self, launch, slot_index: int) -> tuple:
        key = (launch.uid, slot_index)
        cached = self._interval_cache.get(key)
        if cached is None:
            cached = tuple(
                launch.shard_interval(slot_index, point, for_write=False)
                for point in range(launch.size)
            )
            self._interval_cache[key] = cached
        return cached

    def _shards(self, launch, decision) -> tuple:
        """Non-empty ``(slot_index, mem_uid, root, lo, hi)`` shards of
        one launch in the program walk's encounter order (placement
        outer, slot inner)."""
        if self._shard_cache is not None:
            key = (launch.uid, decision.key())
            cached = self._shard_cache.get(key)
            if cached is not None:
                return cached
        entries = []
        placements = self._placer.place_launch(launch, decision)
        slot_data = [
            (launch.args[i].root, self._read_intervals(launch, i))
            for i in range(len(launch.kind.slots))
        ]
        for placement in placements:
            for slot_index, mem in enumerate(placement.mems):
                root, intervals = slot_data[slot_index]
                assert root is not None
                lo, hi = intervals[placement.point]
                if hi > lo:
                    entries.append((slot_index, mem.uid, root, lo, hi))
        shards = tuple(entries)
        if self._shard_cache is not None:
            self._shard_cache[(launch.uid, decision.key())] = shards
        return shards

    # ------------------------------------------------------------------
    def _kind_contrib(self, kind_name: str, decision) -> dict:
        """Merged ``{(mem_uid, root): disjoint (lo, hi) intervals}``
        footprint contribution of every launch of ``kind_name`` under
        ``decision`` — a pure function of the pair, so it is cached."""
        key = (kind_name, decision.key())
        cached = self._contrib_cache.get(key)
        if cached is not None:
            return cached
        buckets: Dict[Tuple[str, str], list] = {}
        for launch in self.graph.launches_of_kind(kind_name):
            for _slot, mem_uid, root, lo, hi in self._shards(launch, decision):
                buckets.setdefault((mem_uid, root), []).append((lo, hi))
        contrib = {
            slot_key: tuple(IntervalSet(pieces))
            for slot_key, pieces in buckets.items()
        }
        self._contrib_cache[key] = contrib
        return contrib

    def _fast_fits(self, mapping: Mapping) -> bool:
        """Whether the mapping's exact steady-state footprint fits every
        memory, computed from cached per-kind contributions.

        The final per-(memory, root) footprint is the union of the
        per-kind contributions, which is order-independent, so these
        totals equal the ones the program-order walk in :meth:`check`
        produces.  Unions are cached by their contributor set: along a
        search chain most kinds keep their decision, so only groups
        touched by the changed kind are re-merged.
        """
        groups: Dict[Tuple[str, str], list] = {}
        contribs: Dict[tuple, dict] = {}
        for kind_name in self._launched_kinds:
            decision = mapping.decision(kind_name)
            member = (kind_name, decision.key())
            contrib = self._kind_contrib(kind_name, decision)
            contribs[member] = contrib
            for slot_key in contrib:
                groups.setdefault(slot_key, []).append(member)
        totals: Dict[str, int] = {}
        for slot_key, members in groups.items():
            mem_uid, _root = slot_key
            union_key = (slot_key, tuple(members))
            size = self._union_cache.get(union_key)
            if size is None:
                pieces: list = []
                for member in members:
                    pieces.extend(contribs[member][slot_key])
                size = IntervalSet(pieces).total
                self._union_cache[union_key] = size
            totals[mem_uid] = totals.get(mem_uid, 0) + size
        for mem_uid, total in totals.items():
            if total > self.machine.memory(mem_uid).capacity:
                return False
        return True

    # ------------------------------------------------------------------
    def check(self, mapping: Mapping) -> MemoryDemand:
        """Compute the footprint of ``mapping``; report overflows."""
        acc = _FootprintAccumulator(self.machine)
        for launch in self.graph.launches:
            decision = mapping.decision(launch.kind.name)
            for _slot, mem_uid, root, lo, hi in self._shards(launch, decision):
                acc.add(mem_uid, root, lo, hi)
        demand = MemoryDemand(per_memory=acc.totals())
        for uid, total in demand.per_memory.items():
            capacity = self.machine.memory(uid).capacity
            if total > capacity:
                demand.overflows[uid] = (total, capacity)
        return demand

    def ensure_fits(self, mapping: Mapping) -> None:
        """Raise :class:`OOMError` if the mapping overflows any memory."""
        if self._shard_cache is not None and self._fast_fits(mapping):
            return
        # Overflow (or no memoisation): take the exact walk so the OOM
        # message is byte-identical to the unmemoised planner's.
        demand = self.check(mapping)
        if not demand.ok:
            raise OOMError(demand.oom_message())

    # ------------------------------------------------------------------
    def apply_spill(self, mapping: Mapping) -> Mapping:
        """Demote overflowing slots along the priority list (§3.1).

        Slots are considered in program order of their first use; a slot
        that does not fit in its mapped memory kind is demoted — for the
        *whole kind*, keeping the factored-space invariant that all
        launches of a kind share one decision — to the next addressable
        memory kind.  Raises :class:`OOMError` when no kind fits.
        """
        if self._shard_cache is not None and self._fast_fits(mapping):
            # Footprint accumulation is monotone, so if the final
            # per-memory unions fit, every prefix ``would_fit`` check in
            # the exact walk below passes and the walk returns the
            # mapping unchanged — skip it.
            return mapping
        demoted: Dict[Tuple[str, int], MemKind] = {}
        current = mapping
        # Iterate to a fixed point: each pass re-walks program order with
        # the demotions applied; at most (kinds x slots x kinds) passes.
        for _ in range(1 + sum(k.num_slots for k in self.graph.task_kinds) * 2):
            acc = _FootprintAccumulator(self.machine)
            retry = False
            for launch in self.graph.launches:
                decision = current.decision(launch.kind.name)
                for slot_index, mem_uid, root, lo, hi in self._shards(
                    launch, decision
                ):
                    if acc.would_fit(mem_uid, root, lo, hi):
                        acc.add(mem_uid, root, lo, hi)
                        continue
                    # Demote this slot to the next preference kind.
                    next_kind = self._next_kind(
                        decision.proc_kind, decision.mem_kinds[slot_index]
                    )
                    if next_kind is None:
                        raise OOMError(
                            f"no memory kind can hold "
                            f"{launch.kind.name}[{slot_index}] "
                            f"({format_bytes(hi - lo)} shard in "
                            f"{mem_uid})"
                        )
                    demoted[(launch.kind.name, slot_index)] = next_kind
                    current = current.with_mem(
                        launch.kind.name, slot_index, next_kind
                    )
                    retry = True
                    break
                if retry:
                    break
            if not retry:
                return current
        raise OOMError("spill fallback failed to converge")

    def _next_kind(
        self, proc_kind, mem_kind: MemKind
    ) -> Optional[MemKind]:
        """Next memory kind after ``mem_kind`` in the processor's
        preference order that exists on this machine."""
        order = [
            mk
            for mk in addressable_mem_kinds(proc_kind)
            if mk in self.machine.mem_kinds()
        ]
        try:
            index = order.index(mem_kind)
        except ValueError:
            return order[0] if order else None
        if index + 1 < len(order):
            return order[index + 1]
        return None
