"""Disjoint half-open integer interval sets.

The instance/coherence layer tracks which byte ranges of each logical
index space are valid in each memory.  :class:`IntervalSet` provides the
union / intersection / subtraction operations that layer needs, stored as
a sorted list of disjoint ``[lo, hi)`` pairs.

The implementation favours clarity and O(n) merges — interval counts per
(root, memory) stay tiny (bounded by the partition count), so this is
never a hot spot; the simulator's profile is dominated by the event loop.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Tuple

__all__ = ["IntervalSet"]

Interval = Tuple[int, int]


def _normalize(intervals: Iterable[Interval]) -> List[Interval]:
    """Sort, drop empties, and coalesce overlapping/adjacent intervals."""
    items = sorted((lo, hi) for lo, hi in intervals if hi > lo)
    out: List[Interval] = []
    for lo, hi in items:
        if out and lo <= out[-1][1]:
            prev_lo, prev_hi = out[-1]
            out[-1] = (prev_lo, max(prev_hi, hi))
        else:
            out.append((lo, hi))
    return out


class IntervalSet:
    """An immutable set of disjoint half-open integer intervals."""

    __slots__ = ("_intervals",)

    def __init__(self, intervals: Iterable[Interval] = ()) -> None:
        self._intervals: List[Interval] = _normalize(intervals)

    @classmethod
    def single(cls, lo: int, hi: int) -> "IntervalSet":
        """The set containing just ``[lo, hi)``."""
        return cls([(lo, hi)])

    @classmethod
    def empty(cls) -> "IntervalSet":
        return cls()

    # ------------------------------------------------------------------
    @property
    def total(self) -> int:
        """Total length covered."""
        return sum(hi - lo for lo, hi in self._intervals)

    def __bool__(self) -> bool:
        return bool(self._intervals)

    def __iter__(self) -> Iterator[Interval]:
        return iter(self._intervals)

    def __len__(self) -> int:
        return len(self._intervals)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, IntervalSet):
            return NotImplemented
        return self._intervals == other._intervals

    def __hash__(self) -> int:
        return hash(tuple(self._intervals))

    # ------------------------------------------------------------------
    def union(self, other: "IntervalSet") -> "IntervalSet":
        return IntervalSet([*self._intervals, *other._intervals])

    def intersection(self, other: "IntervalSet") -> "IntervalSet":
        out: List[Interval] = []
        i = j = 0
        a, b = self._intervals, other._intervals
        while i < len(a) and j < len(b):
            lo = max(a[i][0], b[j][0])
            hi = min(a[i][1], b[j][1])
            if lo < hi:
                out.append((lo, hi))
            if a[i][1] < b[j][1]:
                i += 1
            else:
                j += 1
        return IntervalSet(out)

    def subtract(self, other: "IntervalSet") -> "IntervalSet":
        out: List[Interval] = []
        j = 0
        b = other._intervals
        for lo, hi in self._intervals:
            cur = lo
            while j < len(b) and b[j][1] <= cur:
                j += 1
            k = j
            while k < len(b) and b[k][0] < hi:
                blo, bhi = b[k]
                if blo > cur:
                    out.append((cur, min(blo, hi)))
                cur = max(cur, bhi)
                if cur >= hi:
                    break
                k += 1
            if cur < hi:
                out.append((cur, hi))
        return IntervalSet(out)

    def contains(self, lo: int, hi: int) -> bool:
        """Whether ``[lo, hi)`` is fully covered."""
        if hi <= lo:
            return True
        return self.intersection(IntervalSet.single(lo, hi)).total == hi - lo

    def overlap(self, lo: int, hi: int) -> int:
        """Length of the covered part of ``[lo, hi)``."""
        return self.intersection(IntervalSet.single(lo, hi)).total

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        parts = ", ".join(f"[{lo},{hi})" for lo, hi in self._intervals)
        return f"IntervalSet({parts})"
