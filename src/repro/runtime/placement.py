"""Deterministic concrete placement of point tasks and instances.

AutoMap factors the mapping problem into a search over *kinds* plus
"runtime logic to select specific processors/memories of the appropriate
kind" (paper §3.2).  This module is that runtime logic:

* a **distributed** group launch is decomposed blocked across machine
  nodes (point ``i`` of ``S`` goes to node ``i·N//S``); a non-distributed
  launch runs entirely on the leader node 0 (paper §3.1);
* within its node, a point task is assigned round-robin over the concrete
  processors of the mapped kind;
* each collection argument is instantiated "in the memory of the desired
  kind that is closest to the selected processor" (§3.2) — the GPU's own
  frame buffer, the CPU's own socket's System memory, the node's
  Zero-Copy pool.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.machine.kinds import MemKind, ProcKind
from repro.machine.model import Machine, Memory, Processor
from repro.mapping.decision import MappingDecision
from repro.taskgraph.task import TaskLaunch

__all__ = ["PointPlacement", "Placer"]


@dataclass(frozen=True)
class PointPlacement:
    """Concrete placement of one point task of a launch."""

    point: int
    proc: Processor
    mems: Tuple[Memory, ...]  # one per argument slot


class Placer:
    """Maps (launch, decision) pairs to concrete point placements."""

    def __init__(self, machine: Machine) -> None:
        self.machine = machine
        self._procs_by_kind_node: Dict[Tuple[ProcKind, int], List[Processor]] = {}
        for kind in machine.proc_kinds():
            for node in range(machine.num_nodes):
                procs = machine.processors_of_kind(kind, node)
                self._procs_by_kind_node[(kind, node)] = procs
        self._closest_cache: Dict[Tuple[str, MemKind], Memory] = {}

    def _closest(self, proc: Processor, kind: MemKind) -> Memory:
        key = (proc.uid, kind)
        mem = self._closest_cache.get(key)
        if mem is None:
            found = self.machine.closest_memory(proc, kind)
            if found is None:
                raise ValueError(
                    f"processor {proc.uid} cannot address any "
                    f"{kind.value} memory (invalid mapping reached the "
                    f"placer; validate first)"
                )
            mem = found
            self._closest_cache[key] = mem
        return mem

    def node_of_point(
        self, launch: TaskLaunch, decision: MappingDecision, point: int
    ) -> int:
        """Node index executing the given point task (blocked split)."""
        if not decision.distribute:
            return 0
        return point * self.machine.num_nodes // launch.size

    def place_launch(
        self, launch: TaskLaunch, decision: MappingDecision
    ) -> List[PointPlacement]:
        """Concrete placements for every point task of ``launch``.

        Deterministic: same inputs always yield identical placements, so
        repeated evaluations of one mapping measure the same execution
        (the paper's run-to-run variation comes from the machine, modelled
        separately by the noise layer).
        """
        placements: List[PointPlacement] = []
        rr_counters: Dict[int, int] = {}
        for point in range(launch.size):
            node = self.node_of_point(launch, decision, point)
            procs = self._procs_by_kind_node.get((decision.proc_kind, node), [])
            if not procs:
                raise ValueError(
                    f"no {decision.proc_kind.value} processors on node {node}"
                )
            index = rr_counters.get(node, 0)
            rr_counters[node] = index + 1
            proc = procs[index % len(procs)]
            mems = tuple(
                self._closest(proc, mem_kind)
                for mem_kind in decision.mem_kinds
            )
            placements.append(PointPlacement(point=point, proc=proc, mems=mems))
        return placements

    @staticmethod
    def shard_interval(
        launch: TaskLaunch,
        slot_index: int,
        point: int,
        for_write: bool = False,
    ) -> Tuple[int, int]:
        """Byte interval accessed by one point task through one slot —
        delegates to :meth:`repro.taskgraph.task.TaskLaunch.shard_interval`
        (halo/strip patterns included)."""
        return launch.shard_interval(slot_index, point, for_write=for_write)
