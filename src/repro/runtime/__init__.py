"""Legion-like distributed task-runtime simulator (substrate).

The paper's AutoMap drives the real Legion runtime; this package is the
faithful software stand-in (see DESIGN.md §1).  It executes a task graph
under a mapping on a machine model with discrete-event semantics:

* dependence-driven execution of group launches split into point tasks;
* deterministic placement of point tasks on concrete processors of the
  mapped kind (blocked across nodes, round-robin within a node) and of
  collection instances in the concrete memory of the mapped kind closest
  to the processor (paper §3.2);
* per-memory *instances* of collection data with validity tracked on the
  underlying logical index spaces, so halo sharing, producer/consumer
  copies, and cross-node gathers cost exactly what the channel graph
  says they cost;
* memory-capacity accounting with OOM failures and the priority-list
  spill fallback of §3.1;
* run-to-run measurement noise (lognormal, seeded).

Entry point: :class:`~repro.runtime.simulator.Simulator`.
"""

from repro.runtime.simulator import OOMError, SimConfig, SimResult, Simulator
from repro.runtime.noise import NoiseModel

__all__ = ["Simulator", "SimConfig", "SimResult", "OOMError", "NoiseModel"]
