"""Copy execution over the channel graph.

Turns the coherence layer's :class:`~repro.runtime.instances.CopyNeed`
records into timed transfers: each copy is routed over the machine's
channel path (``Topology``) and reserved hop-by-hop (store-and-forward),
so concurrent copies contend for shared links — the Frame-Buffer↔host
PCIe link and the inter-node network are exactly where the paper's
mapping trade-offs live.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.machine.topology import Topology
from repro.runtime.events import TimelinePool
from repro.runtime.instances import CopyNeed

if TYPE_CHECKING:  # recorder is optional observability plumbing
    from repro.obs.trace import TraceRecorder

__all__ = ["CopyStats", "CopyEngine", "DMA_EFFICIENCY"]

#: Fraction of a channel's link bandwidth a runtime-issued DMA copy
#: sustains (descriptor setup, strided field layouts, synchronisation).
#: In-task streaming access saturates the same link fully, which is why
#: placing shared data in Zero-Copy can beat producing into Frame-Buffer
#: and copying — the §4.2 trade-off.
DMA_EFFICIENCY = 0.7


@dataclass
class CopyStats:
    """Aggregate data-movement statistics for one simulated execution."""

    num_copies: int = 0
    bytes_moved: int = 0
    copy_seconds: float = 0.0  # sum of per-copy durations (overlappable)

    def record(self, nbytes: int, duration: float) -> None:
        self.num_copies += 1
        self.bytes_moved += nbytes
        self.copy_seconds += duration

    def clone(self) -> "CopyStats":
        """An independent copy (incremental-simulation snapshots)."""
        return CopyStats(
            num_copies=self.num_copies,
            bytes_moved=self.bytes_moved,
            copy_seconds=self.copy_seconds,
        )


class CopyEngine:
    """Schedules copies on channel timelines."""

    def __init__(
        self,
        topology: Topology,
        channels: TimelinePool,
        recorder: Optional["TraceRecorder"] = None,
        stats: Optional[CopyStats] = None,
    ) -> None:
        self._topology = topology
        self._channels = channels
        # ``stats`` lets the incremental engine resume accumulation from
        # a snapshot instead of starting a fresh tally.
        self.stats = stats if stats is not None else CopyStats()
        #: Optional span recorder (observational only; ``None`` = off).
        self.recorder = recorder

    @staticmethod
    def _channel_key(mem_a: str, mem_b: str) -> str:
        a, b = sorted((mem_a, mem_b))
        return f"chan:{a}<->{b}"

    def execute(self, need: CopyNeed, dst_mem: str, ready: float) -> float:
        """Perform one copy; returns its finish time.

        The copy may not start before ``ready`` (control dependence) nor
        before the source data exists (``need.src_time``).  Each hop of
        the routed path is a serially-reusable resource; hops are chained
        store-and-forward.
        """
        path = self._topology.copy_path(need.src_mem, dst_mem)
        if path is None:
            raise ValueError(
                f"no channel path from {need.src_mem} to {dst_mem}"
            )
        start_floor = max(ready, need.src_time)
        if not path.hops:
            return start_floor
        time = start_floor
        total_duration = 0.0
        for hop in path.hops:
            duration = hop.latency + need.nbytes / (
                hop.bandwidth * DMA_EFFICIENCY
            )
            key = self._channel_key(hop.mem_a, hop.mem_b)
            hop_start, time = self._channels.reserve(key, time, duration)
            if self.recorder is not None:
                self.recorder.record_copy(
                    key,
                    need.src_mem,
                    dst_mem,
                    hop_start,
                    duration,
                    need.nbytes,
                )
            total_duration += duration
        self.stats.record(need.nbytes, total_duration)
        return time
