"""Run-to-run measurement noise.

"Individual mappings can have significant variation in performance from
run to run, necessitating multiple executions to obtain reliable
estimates of the performance mean and variance" (paper §1).  On real
clusters this variation comes from network contention, OS jitter, and
clock variation; the simulator reproduces it with multiplicative
lognormal noise so that AutoMap's 7-run averaging (§5) is *necessary* in
this reproduction too, not just faithful set dressing.

Noise draws are a pure function of (seed, context key, run index): the
same mapping re-measured in the same run slot observes the same time,
while different run indices vary — exactly the statistical structure of
repeated benchmarking.
"""

from __future__ import annotations

from typing import Dict, Hashable, Optional, Tuple

from repro.util.rng import RngStream

__all__ = ["NoiseModel"]


class NoiseModel:
    """Multiplicative lognormal noise around a deterministic base time.

    Parameters
    ----------
    sigma:
        Log-space standard deviation.  The paper's applications show
        single-digit-percent run-to-run spread; the default 0.04 puts
        ~95 % of samples within ±8 %.
    seed:
        Root seed for the noise stream.
    cache:
        Memoise multiplicative factors per ``(context, run_index)``.
        Factors are pure functions of ``(seed, repr(context),
        run_index)`` — a fresh fork per draw — so caching returns the
        bitwise-identical factor the uncached path would recompute;
        :meth:`sample` and :meth:`mean_factor` then share one draw per
        slot instead of re-deriving the stream each time.
    """

    def __init__(
        self, sigma: float = 0.04, seed: int = 0, cache: bool = False
    ) -> None:
        if sigma < 0:
            raise ValueError("sigma must be >= 0")
        self.sigma = sigma
        self.seed = seed
        # E[lognormal(mu, sigma)] = exp(mu + sigma^2/2); center the mean.
        self._mu = -0.5 * sigma * sigma
        self._factors: Optional[Dict[Tuple[str, int], float]] = (
            {} if cache else None
        )

    def _factor(self, context: Hashable, run_index: int) -> float:
        """The multiplicative factor of one run slot.

        Keyed by ``repr(context)`` — the exact string that names the
        RNG fork, so two contexts draw the same factor iff they would
        share a stream anyway.  repr(), not hash(): Python randomises
        str hashing per process (PYTHONHASHSEED), which would make
        "seeded" measurements differ between runs of the same
        experiment.
        """
        context_repr = repr(context)
        if self._factors is not None:
            key = (context_repr, run_index)
            factor = self._factors.get(key)
            if factor is not None:
                return factor
        stream = RngStream(self.seed).fork(
            "noise", context_repr, str(run_index)
        )
        factor = stream.lognormal(self._mu, self.sigma)
        if self._factors is not None:
            self._factors[(context_repr, run_index)] = factor
        return factor

    def sample(self, base: float, context: Hashable, run_index: int) -> float:
        """One noisy measurement of ``base`` seconds."""
        if base < 0:
            raise ValueError("base time must be >= 0")
        if self.sigma == 0.0 or base == 0.0:
            return base
        return base * self._factor(context, run_index)

    def samples(self, base: float, context: Hashable, count: int) -> list:
        """``count`` independent noisy measurements of ``base``."""
        return [self.sample(base, context, i) for i in range(count)]

    def mean_factor(self, context: Hashable, count: int) -> float:
        """Mean multiplicative factor over run slots ``0..count-1``.

        ``mean(samples(base, context, count)) == base * mean_factor``
        up to float rounding: the bound-pruning layer uses this to turn
        a makespan lower bound into a lower bound on the *measured*
        mean performance of a candidate without drawing base-dependent
        samples.  Draws the exact per-index factors :meth:`sample` uses.
        """
        if self.sigma == 0.0 or count <= 0:
            return 1.0
        total = 0.0
        for run_index in range(count):
            total += self._factor(context, run_index)
        return total / count
