"""Figure 8: Pennant with inputs exceeding the Frame-Buffer (§5.2).

For inputs +1.3 %, +7.1 %, and +14.3 % over the largest input whose
all-Frame-Buffer mapping fits, measures the all-Zero-Copy fallback
("GPU+ZC") against the mapping AutoMap finds with OOM-aware search, on
Shepard and Lassen.

Paper shape: AutoMap at least 4x faster than GPU+ZC everywhere (up to
50x at +1.3 % on one Shepard node), achieved by keeping a subset of the
collection arguments in the Frame-Buffer and demoting the rest; on
Shepard's larger overflows, tasks move to the CPU with System-memory
placements.  Discovered mappings get slower as the input grows.
"""

from __future__ import annotations


from benchmarks.conftest import register_result
from benchmarks._common import make_driver
from repro.apps import PennantApp
from repro.machine import lassen, shepard
from repro.machine.kinds import MemKind, ProcKind
from repro.runtime.memory import MemoryPlanner, OOMError
from repro.viz import Table

OVERSIZES = [("+1.3%", 1.013), ("+7.1%", 1.071), ("+14.3%", 1.143)]
CLUSTERS = {"quick": [("shepard", shepard, 1)], "full": [
    ("shepard", shepard, 1),
    ("shepard", shepard, 4),
    ("lassen", lassen, 1),
    ("lassen", lassen, 4),
]}


def max_fitting_zy(machine) -> int:
    lo, hi = 1000, 2_000_000
    while lo < hi:
        mid = (lo + hi + 1) // 2
        app = PennantApp(320, mid, iterations=1)
        planner = MemoryPlanner(app.graph(machine), machine)
        try:
            planner.ensure_fits(app.space(machine).default_mapping())
            lo = mid
        except OOMError:
            hi = mid - 1
    return lo


def all_zero_copy(space):
    mapping = space.default_mapping()
    for kind in mapping.kind_names():
        for index in range(mapping.decision(kind).num_slots):
            mapping = mapping.with_mem(kind, index, MemKind.ZERO_COPY)
    return mapping


def test_fig8_memory_constrained(benchmark, scale):
    table = Table(
        [
            "cluster",
            "nodes",
            "overflow",
            "GPU+ZC (s)",
            "AutoMap (s)",
            "speedup",
            "demoted slots",
            "cpu kinds",
        ],
        float_format="{:.3f}",
    )
    rows = []

    def sweep():
        for cluster_name, builder, nodes in CLUSTERS[scale]:
            machine = builder(nodes)
            fit_zy = max_fitting_zy(machine)
            for label, mult in OVERSIZES:
                app = PennantApp(320, int(fit_zy * mult), iterations=1)
                driver = make_driver(
                    app, machine, scale=scale, spill=False
                )
                zc = all_zero_copy(driver.space)
                t_zc = driver.measure(zc)
                report = driver.tune(start=zc)
                best = report.best_mapping
                demoted = best.count_mem(MemKind.ZERO_COPY) + best.count_mem(
                    MemKind.SYSTEM
                )
                row = (
                    cluster_name,
                    nodes,
                    label,
                    t_zc,
                    report.best_mean,
                    t_zc / report.best_mean,
                    demoted,
                    best.count_proc(ProcKind.CPU),
                )
                rows.append(row)
                table.add_row(list(row))
        return rows

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    register_result(
        "fig8_memory_constrained",
        table.render(
            title="Figure 8 — Pennant beyond Frame-Buffer capacity"
        ),
    )

    # Shape: AutoMap >= 4x over GPU + all-Zero-Copy at every point.
    assert all(row[5] >= 4.0 for row in rows)
    # Shape: a subset of collection arguments is demoted (not all 97).
    assert all(0 < row[6] < 97 for row in rows)
    # Shape: discovered mappings slow down as the overflow grows.
    per_cluster = {}
    for row in rows:
        per_cluster.setdefault((row[0], row[1]), []).append(row[4])
    for times in per_cluster.values():
        assert times == sorted(times)
