"""§5.3 statistics: suggested vs evaluated mappings and evaluation-time
fractions per search algorithm, on Pennant.

Paper values (Pennant): CCD suggests 1941 and evaluates ~460; CD
suggests 389 and evaluates ~226; OpenTuner suggests ~157 202 and
evaluates ~273.  CCD/CD spend ~99 % of search time evaluating
candidates; OpenTuner 13-45 %.
"""

from __future__ import annotations


from benchmarks.conftest import register_result
from benchmarks._common import make_driver
from repro.apps import PennantApp
from repro.machine import shepard
from repro.viz import Table

PAPER = {
    "ccd": (1941, 460, "~99%"),
    "cd": (389, 226, "~99%"),
    "opentuner": (157_202, 273, "13-45%"),
}


def test_sec53_search_stats(benchmark, scale):
    table = Table(
        [
            "algorithm",
            "suggested",
            "evaluated",
            "eval frac",
            "paper suggested",
            "paper evaluated",
            "paper eval frac",
        ],
        float_format="{:.2f}",
    )
    stats = {}

    def sweep():
        machine = shepard(1)
        for algo in ("ccd", "cd", "opentuner"):
            driver = make_driver(
                PennantApp(320, 90), machine, algorithm=algo, scale=scale
            )
            report = driver.tune()
            stats[algo] = report
            paper = PAPER[algo]
            table.add_row(
                [
                    algo,
                    report.suggested,
                    report.evaluated,
                    report.evaluation_fraction,
                    paper[0],
                    paper[1],
                    paper[2],
                ]
            )
        return stats

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    register_result(
        "sec53_search_stats",
        table.render(title="§5.3 — search-efficiency statistics (Pennant)"),
    )

    ccd, cd, ot = stats["ccd"], stats["cd"], stats["opentuner"]
    # Ordering of suggestion counts: CD < CCD << OpenTuner.
    assert cd.suggested < ccd.suggested < ot.suggested
    # CD is roughly the last rotation of CCD: ~1/rotations of the
    # suggestions (paper: 389 vs 1941).
    assert ccd.suggested / cd.suggested > 2.5
    # The generic tuner suggests at least an order of magnitude more
    # than it evaluates (paper: ~575x).
    assert ot.suggested / max(1, ot.evaluated) > 10
    # Evaluation-time fractions: CCD/CD high, ensemble much lower.
    assert ccd.evaluation_fraction > 0.9
    assert cd.evaluation_fraction > 0.9
    assert ot.evaluation_fraction < ccd.evaluation_fraction
    # Dedup: every algorithm evaluates fewer mappings than it suggests.
    for algo, report in stats.items():
        assert report.evaluated <= report.suggested, algo
