"""Figure 7: Maestro multi-fidelity ensemble CFD (§5.1).

For a grid of (LF sample count × LF resolution) configurations, measures
the slowdown of the high-fidelity simulation (vs HF running alone) under
the two standard strategies — all LF work on CPUs + System memory, all
LF work on GPUs + Zero-Copy — and under the mapping AutoMap discovers
when minimising the HF finish time.

Paper shape: values near 1.0 at light LF loads; "the simple strategies
are not always optimal" — which strategy wins depends on the (count,
resolution) point; AutoMap matches or beats both everywhere.
"""

from __future__ import annotations


from benchmarks.conftest import register_result
from benchmarks._common import make_driver
from repro.apps import MaestroApp
from repro.machine import lassen
from repro.runtime import SimConfig, Simulator
from repro.viz import Table

LF_COUNTS = {"quick": [8, 32], "full": [8, 16, 32, 64]}
LF_RES = {"quick": [16, 64], "full": [16, 32, 64]}
NODES = {"quick": [1], "full": [1, 2]}
HF_RES = 256


def hf_alone_seconds(app: MaestroApp, machine) -> float:
    alone = app.hf_alone()
    sim = Simulator(
        alone.graph(machine), machine, SimConfig(noise_sigma=0, spill=True)
    )
    report = sim.run(alone.space(machine).default_mapping()).report
    return MaestroApp.hf_metric(report)


def test_fig7_maestro(benchmark, scale):
    table = Table(
        ["nodes", "LF count", "LF res", "CPU+Sys", "GPU+ZC", "AutoMap"],
        float_format="{:.3f}",
    )
    rows = []

    def sweep():
        for nodes in NODES[scale]:
            machine = lassen(nodes)
            for lf_count in LF_COUNTS[scale]:
                for lf_res in LF_RES[scale]:
                    app = MaestroApp(
                        lf_count=lf_count, lf_res=lf_res, hf_res=HF_RES
                    )
                    base = hf_alone_seconds(app, machine)
                    driver = make_driver(
                        app, machine, scale=scale,
                        metric=MaestroApp.hf_metric,
                    )
                    cpu = MaestroApp.hf_metric(
                        driver.simulator.run(
                            app.strategy_cpu_system(machine)
                        ).report
                    ) / base
                    gpu = MaestroApp.hf_metric(
                        driver.simulator.run(
                            app.strategy_gpu_zero_copy(machine)
                        ).report
                    ) / base
                    report = driver.tune()
                    am = report.best_mean / base
                    rows.append((nodes, lf_count, lf_res, cpu, gpu, am))
                    table.add_row([nodes, lf_count, lf_res, cpu, gpu, am])
        return rows

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    register_result(
        "fig7_maestro",
        table.render(
            title="Figure 7 — Maestro HF slowdown vs HF alone "
            "(1.0 = unaffected)"
        ),
    )

    # Shape: AutoMap <= both standard strategies at every point.
    for nodes, lf_count, lf_res, cpu, gpu, am in rows:
        assert am <= min(cpu, gpu) * 1.05, (lf_count, lf_res)
    # Shape: strategy preference flips across the grid (the "non-trivial
    # decisions" of §5.1): no single strategy dominates every point.
    prefers_cpu = [r for r in rows if r[3] < r[4]]
    prefers_gpu = [r for r in rows if r[4] < r[3]]
    assert prefers_cpu and prefers_gpu
    # Shape: the lightest configuration barely disturbs HF.
    lightest = min(rows, key=lambda r: r[1] * r[2] ** 3)
    assert lightest[5] < 1.35
