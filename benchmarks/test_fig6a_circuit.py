"""Figure 6a: Circuit — Custom and AM-CCD speedup over the default
mapper, weak-scaled inputs across 1/2/4/8 Shepard nodes.

Paper shape: AM-CCD up to 2.41x at the smallest 1-node input, declining
to ~1.0 at large inputs; the custom mapper hovers around 1.0 (above on
multiple nodes at small inputs, at-or-below at large ones); AM-CCD is
never materially below 1.0.

Quick mode (default) sweeps 4 of the 8 inputs per panel on 1 and 2
nodes; ``REPRO_BENCH_SCALE=full`` reproduces the whole grid.
"""

from __future__ import annotations


from benchmarks.conftest import register_result
from benchmarks._common import fig6_inputs, fig6_node_counts, run_panel_point
from repro.apps import CircuitApp
from repro.machine import shepard
from repro.viz import Table

#: The paper's weak-scaled input ladder (1-node panel); multi-node panels
#: shift the window upward like Figure 6a does.
INPUT_LADDER = [
    (50, 200),
    (100, 400),
    (200, 800),
    (400, 1600),
    (800, 3200),
    (1600, 6400),
    (6400, 25600),
    (12800, 51200),
    (25600, 102400),
    (51200, 204800),
    (102400, 409600),
]


def panel_inputs(nodes: int):
    shift = {1: 0, 2: 1, 4: 2, 8: 3}[nodes]
    return INPUT_LADDER[shift : shift + 8]


def test_fig6a_circuit(benchmark, scale):
    table = Table(
        ["nodes", "input", "custom x", "AM-CCD x"], float_format="{:.2f}"
    )
    points = []

    def sweep():
        for nodes in fig6_node_counts(scale):
            machine = shepard(nodes)
            for n, w in fig6_inputs(panel_inputs(nodes), scale):
                point = run_panel_point(CircuitApp(n, w), machine, scale)
                points.append((nodes, point))
                table.add_row(
                    [
                        nodes,
                        point.label,
                        point.custom_speedup,
                        point.automap_speedup,
                    ]
                )
        return points

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    register_result(
        "fig6a_circuit",
        table.render(
            title="Figure 6a — Circuit speedup over DefaultMapper (Shepard)"
        ),
    )

    one_node = [p for nodes, p in points if nodes == 1]
    # Shape: AutoMap never materially loses to the default.
    assert all(p.automap_speedup > 0.95 for _, p in points)
    # Shape: big win at the smallest input, shrinking at the largest.
    assert one_node[0].automap_speedup > 1.8
    assert one_node[-1].automap_speedup < one_node[0].automap_speedup
    # Shape: the custom mapper stays near 1x on one node.
    assert all(0.85 < p.custom_speedup < 1.3 for p in one_node)
