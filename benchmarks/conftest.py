"""Benchmark-harness plumbing.

Every benchmark regenerates one of the paper's tables or figures and
registers the rendered rows/series here; a terminal-summary hook prints
them all at the end of the ``pytest benchmarks/ --benchmark-only`` run
(so the tables land in the captured output without ``-s``), and each
table is also written to ``benchmarks/results/<name>.txt``.

Scale control: set ``REPRO_BENCH_SCALE=full`` to sweep every input and
node count the paper plots; the default ``quick`` mode covers a
representative subset of each panel (documented per benchmark) so the
whole harness finishes in minutes on a laptop.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import List, Tuple

import pytest

RESULTS_DIR = Path(__file__).parent / "results"

_registered: List[Tuple[str, str]] = []


def bench_scale() -> str:
    """``quick`` (default) or ``full``."""
    scale = os.environ.get("REPRO_BENCH_SCALE", "quick").lower()
    if scale not in ("quick", "full"):
        raise ValueError(f"REPRO_BENCH_SCALE must be quick|full, got {scale!r}")
    return scale


def register_result(name: str, text: str) -> None:
    """Record a rendered table/series for the end-of-run summary and
    persist it under ``benchmarks/results/``."""
    _registered.append((name, text))
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _registered:
        return
    terminalreporter.write_sep("=", "paper tables & figures (reproduced)")
    for name, text in _registered:
        terminalreporter.write_line("")
        terminalreporter.write_sep("-", name)
        for line in text.splitlines():
            terminalreporter.write_line(line)


@pytest.fixture(scope="session")
def scale() -> str:
    return bench_scale()
