"""Figure 6d: HTR — Custom and AM-CCD speedup over the default mapper,
weak-scaled grids across Shepard node counts.

Paper shape: AM-CCD up to ~1.5x on the smallest grids — "the biggest
AutoMap gains are because of placing tasks on the CPU and the data on
Zero-Copy" — declining to ~1.0 at the largest; the custom mapper sits
slightly above 1.0 at small grids and at/below 1.0 at large ones.
"""

from __future__ import annotations


from benchmarks.conftest import register_result
from benchmarks._common import fig6_inputs, fig6_node_counts, make_driver
from repro.apps import HTRApp
from repro.machine import shepard
from repro.machine.kinds import MemKind, ProcKind
from repro.viz import Table

#: 1-node ladder (paper: 8x8y9z .. 128x128y144z); multi-node panels
#: double the y extent per node doubling, like Figure 6d's labels.
BASE_GRIDS = [
    (8, 8, 9),
    (16, 16, 18),
    (32, 32, 36),
    (64, 64, 72),
    (128, 128, 144),
]


def panel_inputs(nodes: int):
    return [(x, y * nodes, z) for (x, y, z) in BASE_GRIDS]


def test_fig6d_htr(benchmark, scale):
    table = Table(
        ["nodes", "input", "custom x", "AM-CCD x", "cpu kinds", "zc slots"],
        float_format="{:.2f}",
    )
    points = []

    def sweep():
        for nodes in fig6_node_counts(scale):
            machine = shepard(nodes)
            for x, y, z in fig6_inputs(panel_inputs(nodes), scale):
                app = HTRApp(x, y, z)
                driver = make_driver(app, machine, scale=scale)
                default_mean = driver.measure(driver.space.default_mapping())
                custom_mean = driver.measure(app.custom_mapping(machine))
                report = driver.tune()
                best = report.best_mapping
                point = (
                    nodes,
                    app.input_label(),
                    default_mean / custom_mean,
                    default_mean / report.best_mean,
                    best.count_proc(ProcKind.CPU),
                    best.count_mem(MemKind.ZERO_COPY),
                )
                points.append(point)
                table.add_row(list(point))
        return points

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    register_result(
        "fig6d_htr",
        table.render(
            title="Figure 6d — HTR speedup over DefaultMapper (Shepard)"
        ),
    )

    one_node = [p for p in points if p[0] == 1]
    assert all(p[3] > 0.95 for p in points)
    # Big win at the smallest grid via CPU + Zero-Copy placements.
    assert one_node[0][3] > 1.4
    assert one_node[0][4] > 0 or one_node[0][5] > 0
    # Shrinks toward 1.0 at the largest grid.
    assert one_node[-1][3] < 1.25
    # Custom mapper close to 1.0.
    assert all(0.85 < p[2] < 1.25 for p in points)
