"""Figure 9: best-mapping execution time vs search time for the three
search algorithms (CCD, CD, OpenTuner-style ensemble) on Pennant and HTR.

Paper shape: CCD consistently reaches the fastest mappings (beating the
others by up to 1.57x); CD terminates earlier at a worse point (it is
one unconstrained rotation); the generic ensemble trails both.  The
x-axis is the simulated search clock — candidate executions plus
per-suggestion overhead — matching the paper's wall-clock search time.
"""

from __future__ import annotations


from benchmarks.conftest import register_result
from benchmarks._common import make_driver
from repro.apps import HTRApp, PennantApp
from repro.machine import shepard
from repro.viz import Table

PROBLEMS = {
    "quick": [
        ("pennant-320x90", lambda: PennantApp(320, 90)),
        ("htr-8x8y9z", lambda: HTRApp(8, 8, 9)),
    ],
    "full": [
        ("pennant-320x90", lambda: PennantApp(320, 90)),
        ("pennant-320x180", lambda: PennantApp(320, 180)),
        ("htr-8x8y9z", lambda: HTRApp(8, 8, 9)),
        ("htr-16x16y18z", lambda: HTRApp(16, 16, 18)),
    ],
}

ALGORITHMS = ("ccd", "cd", "opentuner")


def trace_series(trace, points=6):
    if not trace:
        return ""
    picks = trace[:: max(1, len(trace) // points)]
    if picks[-1] is not trace[-1]:
        picks.append(trace[-1])
    return " ".join(
        f"({p.elapsed:.0f}s,{p.best_performance * 1e3:.1f}ms)" for p in picks
    )


def test_fig9_search_algorithms(benchmark, scale):
    table = Table(
        ["problem", "algorithm", "best (ms)", "search time (s)"],
        float_format="{:.2f}",
    )
    series_lines = []
    results = {}

    def sweep():
        for problem, factory in PROBLEMS[scale]:
            machine = shepard(1)
            for algo in ALGORITHMS:
                driver = make_driver(factory(), machine, algorithm=algo,
                                     scale=scale)
                report = driver.tune()
                results[(problem, algo)] = report
                table.add_row(
                    [
                        problem,
                        algo,
                        report.best_mean * 1e3,
                        report.search_seconds,
                    ]
                )
                series_lines.append(
                    f"{problem:<16} {algo:<10} "
                    f"{trace_series(report.search.trace)}"
                )
        return results

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    register_result(
        "fig9_search_algorithms",
        table.render(title="Figure 9 — best mapping vs search time")
        + "\n\nbest-so-far trajectories:\n"
        + "\n".join(series_lines),
    )

    for problem, _ in PROBLEMS[scale]:
        ccd = results[(problem, "ccd")].best_mean
        cd = results[(problem, "cd")].best_mean
        ot = results[(problem, "opentuner")].best_mean
        # Shape: CCD <= CD <= (roughly) OT; CCD's edge is real.
        assert ccd <= cd * 1.02, problem
        assert ccd <= ot * 1.02, problem
        assert cd <= ot * 1.1, problem
        # CD terminates earlier than CCD (one rotation).
        assert (
            results[(problem, "cd")].search_seconds
            < results[(problem, "ccd")].search_seconds
        ), problem
