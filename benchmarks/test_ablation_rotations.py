"""Ablation: CCD rotation count (§5, experimental setup).

The paper fixes five rotations: "More rotations increased the search
time without improving performance, and fewer rotations made CCD perform
similarly to CD."  This ablation sweeps the rotation count on Pennant
320x90 and checks both halves of that statement.
"""

from __future__ import annotations


from benchmarks.conftest import register_result
from benchmarks._common import MAX_SUGGESTIONS, SEED
from repro.apps import PennantApp
from repro.core import AutoMapDriver, OracleConfig
from repro.machine import shepard
from repro.runtime import SimConfig
from repro.search import ConstrainedCoordinateDescent
from repro.viz import Table

ROTATIONS = {"quick": [1, 2, 3, 5, 8], "full": [1, 2, 3, 4, 5, 6, 8, 10]}


def test_ablation_rotations(benchmark, scale):
    table = Table(
        ["rotations", "best (ms)", "suggested", "search time (s)"],
        float_format="{:.2f}",
    )
    results = {}

    def sweep():
        app = PennantApp(320, 90)
        machine = shepard(1)
        graph = app.graph(machine)
        for rotations in ROTATIONS[scale]:
            driver = AutoMapDriver(
                graph,
                machine,
                algorithm=ConstrainedCoordinateDescent(rotations=rotations),
                oracle_config=OracleConfig(
                    max_suggestions=MAX_SUGGESTIONS[scale]
                ),
                sim_config=SimConfig(noise_sigma=0.04, seed=SEED, spill=True),
            )
            report = driver.tune()
            results[rotations] = report
            table.add_row(
                [
                    rotations,
                    report.best_mean * 1e3,
                    report.suggested,
                    report.search_seconds,
                ]
            )
        return results

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    register_result(
        "ablation_rotations",
        table.render(title="Ablation — CCD rotation count (Pennant 320x90)"),
    )

    best = {r: rep.best_mean for r, rep in results.items()}
    times = {r: rep.search_seconds for r, rep in results.items()}
    # More rotations => more search time.
    assert times[max(best)] > times[min(best)]
    # Quality saturates: 5 rotations within a few percent of the best
    # achieved by any rotation count.
    assert best[5] <= min(best.values()) * 1.05
    # Extra rotations beyond 5 buy little (the paper's "without
    # improving performance").
    most = max(r for r in best if r > 5)
    assert best[most] >= best[5] * 0.93
