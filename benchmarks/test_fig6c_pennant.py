"""Figure 6c: Pennant — Custom and AM-CCD speedup over the default
mapper, weak-scaled meshes across Shepard node counts.

Paper shape: AM-CCD's biggest wins come on small meshes from *mixed*
mappings (up to 26 of the 31 task kinds on the CPU, several collection
arguments in Zero-Copy), shrinking toward ~1.0 as the mesh grows and the
GPU takes over; the custom mapper stays near 1.0 (0.92-1.05).
"""

from __future__ import annotations


from benchmarks.conftest import register_result
from benchmarks._common import fig6_inputs, fig6_node_counts, make_driver
from repro.apps import PennantApp
from repro.machine import shepard
from repro.machine.kinds import ProcKind
from repro.viz import Table

#: The paper's 1-node ladder: 320x90 .. 320x5760 (zy doubles), shifted
#: upward per node count like Figure 6c.
ZY_LADDER = [90, 180, 360, 720, 1440, 2880, 5760, 11520, 23040, 46080]


def panel_inputs(nodes: int):
    shift = {1: 0, 2: 1, 4: 2, 8: 3}[nodes]
    return ZY_LADDER[shift : shift + 7]


def test_fig6c_pennant(benchmark, scale):
    table = Table(
        ["nodes", "input", "custom x", "AM-CCD x", "cpu kinds", "zc slots"],
        float_format="{:.2f}",
    )
    points = []

    def sweep():
        for nodes in fig6_node_counts(scale):
            machine = shepard(nodes)
            for zy in fig6_inputs(panel_inputs(nodes), scale):
                app = PennantApp(320, zy)
                driver = make_driver(app, machine, scale=scale)
                default_mean = driver.measure(driver.space.default_mapping())
                custom_mean = driver.measure(app.custom_mapping(machine))
                report = driver.tune()
                best = report.best_mapping
                from repro.machine.kinds import MemKind

                point = (
                    nodes,
                    app.input_label(),
                    default_mean / custom_mean,
                    default_mean / report.best_mean,
                    best.count_proc(ProcKind.CPU),
                    best.count_mem(MemKind.ZERO_COPY),
                )
                points.append(point)
                table.add_row(list(point))
        return points

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    register_result(
        "fig6c_pennant",
        table.render(
            title="Figure 6c — Pennant speedup over DefaultMapper (Shepard)"
        ),
    )

    one_node = [p for p in points if p[0] == 1]
    # AM-CCD >= default everywhere; declining with size on one node.
    assert all(p[3] > 0.95 for p in points)
    assert one_node[0][3] > 1.3
    assert one_node[-1][3] < one_node[0][3]
    # Custom mapper near 1.0 (paper 0.92-1.08).
    assert all(0.85 < p[2] < 1.2 for p in points)
    # The small-input winner is a mixed mapping with many CPU kinds.
    assert one_node[0][4] >= 10
