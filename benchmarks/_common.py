"""Shared runners for the benchmark harness.

All benchmarks measure the same protocol the paper describes in §5:
candidate mappings are averaged over 7 noisy runs during the search, the
top-5 mappings are re-measured 31 times, and baselines (default mapper,
custom mapper, fixed strategies) are measured with the final protocol.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.apps.base import App
from repro.core import AutoMapDriver, OracleConfig
from repro.machine.model import Machine
from repro.runtime import SimConfig

#: One fixed seed per harness run keeps every figure reproducible.
SEED = 2023

#: Suggestion cap for generic tuners (the paper's OpenTuner runs suggest
#: ~157k mappings; quick mode uses a smaller but same-regime cap).
MAX_SUGGESTIONS = {"quick": 20_000, "full": 160_000}


def bench_workers() -> int:
    """Process-pool size for candidate evaluation during figure
    reproduction.  Parallel evaluation is bit-identical to serial
    (see :mod:`repro.parallel`), so the figures are unchanged; set
    ``REPRO_BENCH_WORKERS=N`` to use N worker processes."""
    workers = int(os.environ.get("REPRO_BENCH_WORKERS", "1"))
    if workers < 1:
        raise ValueError("REPRO_BENCH_WORKERS must be >= 1")
    return workers


def bench_checkpoint_kwargs(label: str) -> dict:
    """Checkpointing knobs for long benchmark sweeps.

    Set ``REPRO_BENCH_CHECKPOINT_DIR=/path`` to checkpoint each tuning
    run to ``<dir>/<label>.checkpoint.json`` (atomically replaced) every
    ``REPRO_BENCH_CHECKPOINT_EVERY`` evaluations (default 200), so a
    killed full-scale figure run loses at most one checkpoint interval.
    Checkpointing never changes results — it only snapshots state."""
    directory = os.environ.get("REPRO_BENCH_CHECKPOINT_DIR")
    if not directory:
        return {}
    every = int(os.environ.get("REPRO_BENCH_CHECKPOINT_EVERY", "200"))
    safe = label.replace("/", "-").replace(" ", "_")
    return {
        "checkpoint_path": os.path.join(
            directory, f"{safe}.checkpoint.json"
        ),
        "checkpoint_every": every,
    }


@dataclass
class PanelPoint:
    """One x-axis point of a Figure 6-style panel."""

    label: str
    default_mean: float
    custom_speedup: float
    automap_speedup: float


def make_driver(
    app: App,
    machine: Machine,
    algorithm: str = "ccd",
    scale: str = "quick",
    metric=None,
    spill: bool = True,
    seed: int = SEED,
) -> AutoMapDriver:
    label = f"{app.name}-{app.input_label()}-{machine.name}-{algorithm}"
    return AutoMapDriver(
        app.graph(machine),
        machine,
        algorithm=algorithm,
        oracle_config=OracleConfig(
            max_suggestions=MAX_SUGGESTIONS[scale],
            metric=metric,
        ),
        sim_config=SimConfig(noise_sigma=0.04, seed=seed, spill=spill),
        space=app.space(machine),
        workers=bench_workers(),
        **bench_checkpoint_kwargs(label),
    )


def run_panel_point(
    app: App, machine: Machine, scale: str = "quick"
) -> PanelPoint:
    """Measure default / custom / AutoMap for one (app, input, machine)
    point, exactly as Figure 6 plots them (speedups over the default
    mapper)."""
    driver = make_driver(app, machine, scale=scale)
    default_mean = driver.measure(driver.space.default_mapping())
    custom_mean = driver.measure(app.custom_mapping(machine))
    report = driver.tune()
    return PanelPoint(
        label=app.input_label(),
        default_mean=default_mean,
        custom_speedup=default_mean / custom_mean,
        automap_speedup=default_mean / report.best_mean,
    )


def fig6_inputs(all_inputs, scale: str):
    """Figure 6 sweeps 8 inputs per panel; quick mode takes a spread of
    4 (smallest, two middle, largest) that preserves the crossover."""
    if scale == "full":
        return list(all_inputs)
    n = len(all_inputs)
    picks = sorted({0, n // 3, 2 * n // 3, n - 1})
    return [all_inputs[i] for i in picks]


def fig6_node_counts(scale: str):
    """Figure 6 plots 1/2/4/8 nodes; quick mode covers 1 and 2."""
    return [1, 2, 4, 8] if scale == "full" else [1, 2]
