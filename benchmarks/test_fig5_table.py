"""Figure 5 (table): benchmark-application inventory.

Regenerates the paper's description table — tasks, collection arguments,
search-space size, and CCD search time — from the application
implementations.  Paper values for reference: Circuit 3/15/~2^18,
Stencil 2/12/~2^14, Pennant 31/97/~2^128, HTR 28/72/~2^100, Maestro
13 (only LFs)/30/~2^43.

The benchmarked operation is the CCD search on the smallest Circuit
input (the table's "search time" column is measured, scaled down to the
quick input).
"""

from __future__ import annotations


from benchmarks.conftest import register_result
from benchmarks._common import make_driver
from repro.apps import CircuitApp, HTRApp, MaestroApp, PennantApp, StencilApp
from repro.machine import shepard
from repro.viz import Table

PAPER_ROWS = {
    "circuit": (3, 15, 18),
    "stencil": (2, 12, 14),
    "pennant": (31, 97, 128),
    "htr": (28, 72, 100),
    "maestro": (13, 30, 43),
}


def build_table():
    machine = shepard(1)
    apps = [
        CircuitApp(),
        StencilApp(),
        PennantApp(),
        HTRApp(),
        MaestroApp(),
    ]
    table = Table(
        [
            "Application",
            "Tasks",
            "Collection Args",
            "Search Space (ours)",
            "Search Space (paper)",
        ]
    )
    rows = {}
    for app in apps:
        space = app.space(machine)
        rows[app.name] = (
            app.num_tasks(),
            app.num_collection_arguments(),
            space.log2_size(),
        )
        table.add_row(
            [
                app.name,
                app.num_tasks(),
                app.num_collection_arguments(),
                f"~2^{space.log2_size():.0f}",
                f"~2^{PAPER_ROWS[app.name][2]}",
            ]
        )
    return table, rows


def test_fig5_inventory_table(benchmark):
    table, rows = build_table()
    register_result(
        "fig5_table",
        table.render(title="Figure 5 — application inventory"),
    )

    # Shape assertions: counts match the paper exactly; sizes same order.
    for name, (tasks, args, log2) in rows.items():
        p_tasks, p_args, p_log2 = PAPER_ROWS[name]
        assert tasks == p_tasks, name
        assert args == p_args, name
        assert abs(log2 - p_log2) <= max(8, 0.25 * p_log2), name

    # The measured column: one CCD search on the smallest Circuit input.
    def ccd_search():
        driver = make_driver(CircuitApp(50, 200), shepard(1))
        return driver.tune()

    report = benchmark.pedantic(ccd_search, rounds=1, iterations=1)
    assert report.best_mapping is not None
