"""CI benchmark smoke run — one short tune per application.

Runs a small CCD search for every bundled application on one Shepard
node, traces the winning mapping, and writes ``BENCH_smoke.json`` with
the makespan, the oracle-call counts, and the compute/copy/idle time
breakdown per app.  With ``--baseline`` the run is additionally gated:
any app whose best makespan regresses more than ``--tolerance`` (default
10%) against the committed baseline fails the run.

The searches are fully deterministic (fixed seeds, simulated clock, no
wall time in any compared quantity), so in practice the gate only fires
on a real behaviour change — the tolerance absorbs intentional cost-
model adjustments that are small enough not to matter.

Usage::

    python benchmarks/smoke.py --output BENCH_smoke.json \
        --baseline benchmarks/results/BENCH_baseline.json

Regenerate the baseline after an intentional change with::

    python benchmarks/smoke.py --output benchmarks/results/BENCH_baseline.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.apps import make_app
from repro.core import AutoMapDriver, OracleConfig
from repro.machine import shepard
from repro.runtime import SimConfig

#: Small inputs per application, sized so each search finishes in a few
#: seconds (mirrors tests/test_smoke.py).
SMOKE_INPUTS = {
    "circuit": {"nodes": 200, "wires": 800},
    "stencil": {"nx": 200, "ny": 200},
    "pennant": {"zx": 64, "zy": 36},
    "htr": {"x": 8, "y": 8, "z": 9},
    "maestro": {"lf_count": 4, "lf_res": 16},
}

SEED = 7
MAX_SUGGESTIONS = 150


def run_app(app_name: str) -> dict:
    """One short tune; returns the app's BENCH_smoke entry."""
    machine = shepard(1)
    app = make_app(app_name, **SMOKE_INPUTS[app_name])
    driver = AutoMapDriver(
        app.graph(machine),
        machine,
        algorithm="ccd",
        oracle_config=OracleConfig(max_suggestions=MAX_SUGGESTIONS),
        sim_config=SimConfig(noise_sigma=0.04, seed=SEED, spill=True),
        space=app.space(machine),
        seed=SEED,
        trace=True,
    )
    report = driver.tune()
    assert report.breakdown is not None
    return {
        "application": report.application,
        "machine": report.machine_name,
        "algorithm": report.algorithm,
        "best_mean": report.best_mean,
        "best_makespan": report.breakdown["makespan"],
        "oracle_calls": {
            "suggested": report.suggested,
            "evaluated": report.evaluated,
            "invalid": report.invalid_suggestions,
            "failed": report.failed_evaluations,
            "folded": report.canonical_folds,
            "pruned": report.static_oom_pruned,
            "bound_pruned": report.bound_pruned,
            "bound_settled": report.bound_settled,
            "simulations": report.simulations,
        },
        "breakdown": {
            "compute_fraction": report.breakdown["compute_fraction"],
            "copy_fraction": report.breakdown["copy_fraction"],
            "overhead_fraction": report.breakdown["overhead_fraction"],
            "idle_fraction": report.breakdown["idle_fraction"],
            "active_processors": report.breakdown["active_processors"],
        },
    }


def check_regressions(
    results: dict, baseline: dict, tolerance: float
) -> list:
    """Makespan-regression failures of ``results`` vs ``baseline``.

    Only the apps actually run are gated (``--apps`` subsets compare a
    subset); an app without a baseline entry is skipped — it gets one
    the next time the baseline is regenerated.
    """
    failures = []
    for app_name, current in sorted(results["apps"].items()):
        entry = baseline["apps"].get(app_name)
        if entry is None:
            print(f"note: {app_name} has no baseline entry; skipping gate")
            continue
        base = entry["best_mean"]
        now = current["best_mean"]
        if base > 0 and now > base * (1.0 + tolerance):
            failures.append(
                f"{app_name}: best mean {now:.6g} s regressed "
                f"{now / base - 1.0:.1%} over baseline {base:.6g} s "
                f"(tolerance {tolerance:.0%})"
            )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output",
        default="BENCH_smoke.json",
        help="where to write the results (default: BENCH_smoke.json)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help="committed baseline to gate against (omit to skip the gate)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.10,
        help="allowed fractional makespan regression (default: 0.10)",
    )
    parser.add_argument(
        "--apps",
        nargs="*",
        default=sorted(SMOKE_INPUTS),
        choices=sorted(SMOKE_INPUTS),
        help="subset of applications to run",
    )
    args = parser.parse_args(argv)

    results = {
        "format": "bench-smoke-v1",
        "seed": SEED,
        "max_suggestions": MAX_SUGGESTIONS,
        "apps": {},
    }
    for app_name in args.apps:
        entry = run_app(app_name)
        results["apps"][app_name] = entry
        print(
            f"{app_name}: best {entry['best_mean']:.6g} s, "
            f"{entry['oracle_calls']['suggested']} suggested / "
            f"{entry['oracle_calls']['evaluated']} evaluated / "
            f"{entry['oracle_calls']['bound_pruned']} bound-pruned, "
            f"{entry['breakdown']['compute_fraction']:.0%} compute / "
            f"{entry['breakdown']['copy_fraction']:.0%} copy / "
            f"{entry['breakdown']['idle_fraction']:.0%} idle"
        )

    output = Path(args.output)
    output.parent.mkdir(parents=True, exist_ok=True)
    output.write_text(json.dumps(results, indent=2, sort_keys=True) + "\n")
    print(f"wrote {output}")

    if args.baseline:
        baseline_path = Path(args.baseline)
        if not baseline_path.exists():
            print(f"FAIL: baseline {baseline_path} not found")
            return 1
        baseline = json.loads(baseline_path.read_text())
        failures = check_regressions(results, baseline, args.tolerance)
        if failures:
            for failure in failures:
                print(f"FAIL: {failure}")
            return 1
        print(
            f"no makespan regressions vs {baseline_path} "
            f"(tolerance {args.tolerance:.0%})"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
