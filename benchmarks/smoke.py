"""CI benchmark smoke run — one short tune per application.

Runs a small CCD search for every bundled application, traces the
winning mapping, and writes ``BENCH_smoke.json`` (format
``bench-smoke-v2``) with the makespan, the oracle-call counts, the
compute/copy/idle breakdown, the search throughput (candidates/second)
and the incremental engine's effectiveness counters per app.  For the
speedup apps (circuit, stencil) the tune is additionally repeated with
incremental simulation disabled: the two runs must agree byte-for-byte
on the best mapping / mean / stddev / finalists, and the incremental
path must be at least ``SPEEDUP_FLOOR`` times faster.

With ``--baseline`` the run is gated two ways:

* any app whose best makespan regresses more than ``--tolerance``
  (default 10%) against the committed baseline fails the run (the
  makespan is simulated-clock, so this gate is deterministic);
* any app whose search throughput drops more than
  ``--throughput-tolerance`` (default 10%) below the baseline fails the
  run.  Throughput is compared *normalized*: each app's
  candidates/second is divided by the geometric mean over the apps
  common to both runs, so a uniformly faster or slower runner cancels
  out and the gate fires only on per-app regressions.  The run keeps
  the best of ``--reps`` repetitions to damp scheduler noise; raw
  candidates/second is recorded alongside for human inspection.

A baseline in the old ``bench-smoke-v1`` format skips the throughput
gate with a note — regenerate to enable it.

Usage::

    python benchmarks/smoke.py --output BENCH_smoke.json \
        --baseline benchmarks/results/BENCH_baseline.json

Regenerate the baseline after an intentional change with::

    python benchmarks/smoke.py --output benchmarks/results/BENCH_baseline.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.apps import make_app
from repro.core import AutoMapDriver, OracleConfig
from repro.machine import shepard
from repro.runtime import SimConfig

#: Per-application smoke configuration: input sizes, machine node count
#: and suggestion budget.  The speedup apps run on a larger machine with
#: more main-loop iterations — that is the regime where re-simulation
#: dominates tuning time and the incremental engine's advantage is
#: measured (gated at SPEEDUP_FLOOR).
SMOKE_CONFIGS = {
    "circuit": {
        "inputs": {"nodes": 200, "wires": 800, "iterations": 4},
        "nodes": 16,
        "max_suggestions": 300,
    },
    "stencil": {
        "inputs": {"nx": 200, "ny": 200, "iterations": 6},
        "nodes": 16,
        "max_suggestions": 300,
    },
    "pennant": {
        "inputs": {"zx": 64, "zy": 36},
        "nodes": 1,
        "max_suggestions": 150,
    },
    "htr": {
        "inputs": {"x": 8, "y": 8, "z": 9},
        "nodes": 1,
        "max_suggestions": 150,
    },
    "maestro": {
        "inputs": {"lf_count": 4, "lf_res": 16},
        "nodes": 1,
        "max_suggestions": 150,
    },
}

#: Apps whose incremental-vs-full speedup is asserted every run.
SPEEDUP_APPS = ("circuit", "stencil")

#: Minimum incremental-vs-full throughput ratio for the speedup apps.
#: The routed schedule-replay bound added a fixed per-candidate analysis
#: cost to both arms of the A/B (it buys a ~4x cut in simulations on the
#: pruned path), which dilutes this ratio below its pre-routing ~3x.
SPEEDUP_FLOOR = 2.5

SEED = 7
FORMAT = "bench-smoke-v2"


def _tune(app_name: str, incremental: bool, bound_prune: bool = True):
    """One short tune; returns (report, wall_seconds, stats)."""
    config = SMOKE_CONFIGS[app_name]
    machine = shepard(config["nodes"])
    app = make_app(app_name, **config["inputs"])
    driver = AutoMapDriver(
        app.graph(machine),
        machine,
        algorithm="ccd",
        oracle_config=OracleConfig(
            max_suggestions=config["max_suggestions"]
        ),
        sim_config=SimConfig(
            noise_sigma=0.04,
            seed=SEED,
            spill=True,
            incremental=incremental,
        ),
        space=app.space(machine),
        seed=SEED,
        trace=True,
        bound_prune=bound_prune,
    )
    started = time.perf_counter()
    report = driver.tune()
    wall = time.perf_counter() - started
    return report, wall, driver.simulator.incremental_stats


def _tune_best_of(
    app_name: str, incremental: bool, reps: int, bound_prune: bool = True
):
    """Repeat the tune, keep the fastest wall time (results are
    deterministic, only the clock varies)."""
    best = None
    for _ in range(max(1, reps)):
        report, wall, stats = _tune(app_name, incremental, bound_prune)
        if best is None or wall < best[1]:
            best = (report, wall, stats)
    return best


def _report_fingerprint(report):
    """Everything the identity assertion compares, floats exact."""
    return (
        report.best_mapping.key(),
        report.best_mean.hex(),
        report.best_stddev.hex(),
        tuple(
            (mapping.key(), mean.hex(), stddev.hex(), count)
            for mapping, mean, stddev, count in report.finalists
        ),
        report.suggested,
        report.simulations,
    )


def run_app(app_name: str, reps: int) -> dict:
    """One smoke entry; for speedup apps also the full-mode rerun with
    the identity and speedup assertions."""
    report, wall, stats = _tune_best_of(app_name, True, reps)
    assert report.breakdown is not None
    suggested = report.suggested
    entry = {
        "application": report.application,
        "machine": report.machine_name,
        "algorithm": report.algorithm,
        "best_mean": report.best_mean,
        "best_makespan": report.breakdown["makespan"],
        "wall_seconds": wall,
        "candidates_per_second": suggested / wall if wall > 0 else 0.0,
        "incremental": stats.as_dict(),
        "oracle_calls": {
            "suggested": report.suggested,
            "evaluated": report.evaluated,
            "invalid": report.invalid_suggestions,
            "failed": report.failed_evaluations,
            "folded": report.canonical_folds,
            "pruned": report.static_oom_pruned,
            "bound_pruned": report.bound_pruned,
            "bound_settled": report.bound_settled,
            "simulations": report.simulations,
        },
        "analysis": {
            # Routed-vs-incident tightening on the winner (>= 1.0) and
            # machine-symmetry orbit folds (0 on asymmetric machines,
            # pinned: shepard's CPU/GPU sides are never interchangeable).
            "bound_gap_ratio": report.bound_gap_ratio,
            "symmetry_folds": report.symmetry_folds,
        },
        "breakdown": {
            "compute_fraction": report.breakdown["compute_fraction"],
            "copy_fraction": report.breakdown["copy_fraction"],
            "overhead_fraction": report.breakdown["overhead_fraction"],
            "idle_fraction": report.breakdown["idle_fraction"],
            "active_processors": report.breakdown["active_processors"],
        },
    }
    if app_name in SPEEDUP_APPS:
        # The incremental-vs-full A/B runs without bound pruning: the
        # engine's advantage is measured in its target regime, where
        # re-simulation (not static analysis) dominates tuning time.
        inc_report, inc_wall, _ = _tune_best_of(
            app_name, True, reps, bound_prune=False
        )
        full_report, full_wall, _ = _tune_best_of(
            app_name, False, reps, bound_prune=False
        )
        if _report_fingerprint(inc_report) != _report_fingerprint(full_report):
            raise AssertionError(
                f"{app_name}: incremental and full tuning disagree — "
                "identity contract broken"
            )
        speedup = full_wall / inc_wall if inc_wall > 0 else 0.0
        entry["identity"] = {
            "incremental_wall_seconds": inc_wall,
            "full_wall_seconds": full_wall,
            "speedup": speedup,
            "identical": True,
        }
        if speedup < SPEEDUP_FLOOR:
            raise AssertionError(
                f"{app_name}: incremental speedup {speedup:.2f}x below "
                f"the {SPEEDUP_FLOOR:.1f}x floor "
                f"(incremental {inc_wall:.2f}s vs full {full_wall:.2f}s)"
            )
    return entry


def _geomean(values) -> float:
    product = 1.0
    for value in values:
        product *= value
    return product ** (1.0 / len(values)) if values else 0.0


def check_regressions(
    results: dict,
    baseline: dict,
    tolerance: float,
    throughput_tolerance: float,
) -> list:
    """Gate failures of ``results`` vs ``baseline``.

    Only the apps actually run are gated (``--apps`` subsets compare a
    subset); an app without a baseline entry is skipped — it gets one
    the next time the baseline is regenerated.  Baselines in the v1
    format carry no throughput data, so only the makespan gate runs.
    """
    failures = []
    v1_baseline = baseline.get("format") != FORMAT
    if v1_baseline:
        print(
            "note: baseline predates bench-smoke-v2; throughput gate "
            "skipped — regenerate the baseline to enable it"
        )

    # Normalizers over the apps present in both runs: dividing each
    # app's rate by its run's geometric mean cancels absolute machine
    # speed, leaving only per-app shifts for the gate.
    common = [
        name
        for name, current in results["apps"].items()
        if not v1_baseline
        and current.get("candidates_per_second", 0.0) > 0
        and baseline["apps"]
        .get(name, {})
        .get("candidates_per_second", 0.0)
        > 0
    ]
    now_norm = _geomean(
        [results["apps"][n]["candidates_per_second"] for n in common]
    )
    base_norm = _geomean(
        [baseline["apps"][n]["candidates_per_second"] for n in common]
    )
    if common and len(common) < 2:
        print(
            "note: only one app in common with the baseline; "
            "normalized throughput gate is vacuous for a single app"
        )

    for app_name, current in sorted(results["apps"].items()):
        entry = baseline["apps"].get(app_name)
        if entry is None:
            print(f"note: {app_name} has no baseline entry; skipping gate")
            continue
        base = entry["best_mean"]
        now = current["best_mean"]
        if base > 0 and now > base * (1.0 + tolerance):
            failures.append(
                f"{app_name}: best mean {now:.6g} s regressed "
                f"{now / base - 1.0:.1%} over baseline {base:.6g} s "
                f"(tolerance {tolerance:.0%})"
            )
        if app_name not in common or now_norm <= 0 or base_norm <= 0:
            continue
        now_rel = current["candidates_per_second"] / now_norm
        base_rel = entry["candidates_per_second"] / base_norm
        if now_rel < base_rel * (1.0 - throughput_tolerance):
            failures.append(
                f"{app_name}: normalized throughput {now_rel:.2f} "
                f"dropped {1.0 - now_rel / base_rel:.1%} below baseline "
                f"{base_rel:.2f} (raw "
                f"{current['candidates_per_second']:.1f} vs "
                f"{entry['candidates_per_second']:.1f} cand/s, "
                f"tolerance {throughput_tolerance:.0%})"
            )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output",
        default="BENCH_smoke.json",
        help="where to write the results (default: BENCH_smoke.json)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help="committed baseline to gate against (omit to skip the gate)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.10,
        help="allowed fractional makespan regression (default: 0.10)",
    )
    parser.add_argument(
        "--throughput-tolerance",
        type=float,
        default=0.10,
        help="allowed fractional candidates/second drop (default: 0.10)",
    )
    parser.add_argument(
        "--reps",
        type=int,
        default=3,
        help="timing repetitions per configuration; the fastest is kept "
        "(default: 3)",
    )
    parser.add_argument(
        "--apps",
        nargs="*",
        default=sorted(SMOKE_CONFIGS),
        choices=sorted(SMOKE_CONFIGS),
        help="subset of applications to run",
    )
    args = parser.parse_args(argv)

    results = {
        "format": FORMAT,
        "seed": SEED,
        "speedup_floor": SPEEDUP_FLOOR,
        "apps": {},
    }
    for app_name in args.apps:
        entry = run_app(app_name, args.reps)
        results["apps"][app_name] = entry
        identity = entry.get("identity")
        speedup_note = (
            f", {identity['speedup']:.2f}x vs full (identical)"
            if identity
            else ""
        )
        print(
            f"{app_name}: best {entry['best_mean']:.6g} s, "
            f"{entry['oracle_calls']['suggested']} suggested / "
            f"{entry['oracle_calls']['evaluated']} evaluated / "
            f"{entry['oracle_calls']['bound_pruned']} bound-pruned, "
            f"{entry['candidates_per_second']:.1f} cand/s, "
            f"routed-gap {entry['analysis']['bound_gap_ratio']:.2f}x / "
            f"sym-folds {entry['analysis']['symmetry_folds']}, "
            f"replay {entry['incremental']['replay_fraction']:.0%} / "
            f"cost-hit {entry['incremental']['cost_hit_rate']:.0%}"
            f"{speedup_note}"
        )

    output = Path(args.output)
    output.parent.mkdir(parents=True, exist_ok=True)
    output.write_text(json.dumps(results, indent=2, sort_keys=True) + "\n")
    print(f"wrote {output}")

    if args.baseline:
        baseline_path = Path(args.baseline)
        if not baseline_path.exists():
            print(f"FAIL: baseline {baseline_path} not found")
            return 1
        baseline = json.loads(baseline_path.read_text())
        failures = check_regressions(
            results, baseline, args.tolerance, args.throughput_tolerance
        )
        if failures:
            for failure in failures:
                print(f"FAIL: {failure}")
            return 1
        print(
            f"no regressions vs {baseline_path} (makespan tolerance "
            f"{args.tolerance:.0%}, throughput tolerance "
            f"{args.throughput_tolerance:.0%})"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
