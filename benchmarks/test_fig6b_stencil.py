"""Figure 6b: Stencil — Custom and AM-CCD speedup over the default
mapper, weak-scaled grids across Shepard node counts.

Paper shape: the custom mapper tracks ~1.0 everywhere (it follows the
default strategy); AM-CCD wins at small/mid grids (up to 1.85x on one
node) by moving both kinds to the CPU with mixed System/Zero-Copy
placements, converging to ~1.0 once the grid is large enough for the
GPU's frame-buffer bandwidth to dominate.
"""

from __future__ import annotations


from benchmarks.conftest import register_result
from benchmarks._common import fig6_inputs, fig6_node_counts, run_panel_point
from repro.apps import StencilApp
from repro.machine import shepard
from repro.viz import Table

#: 1-node input ladder (paper: 500x500 .. 5500x5500); multi-node panels
#: double the total grid per node doubling, as Figure 6b's labels do.
BASE_SIZES = [500, 1000, 1500, 2000, 2500, 3000, 3500, 4000, 4500, 5000, 5500]


def panel_inputs(nodes: int):
    return [(s * nodes, s) for s in BASE_SIZES][:8] if nodes > 1 else [
        (s, s) for s in BASE_SIZES[:8]
    ]


def test_fig6b_stencil(benchmark, scale):
    table = Table(
        ["nodes", "input", "custom x", "AM-CCD x"], float_format="{:.2f}"
    )
    points = []

    def sweep():
        for nodes in fig6_node_counts(scale):
            machine = shepard(nodes)
            for nx, ny in fig6_inputs(panel_inputs(nodes), scale):
                point = run_panel_point(StencilApp(nx, ny), machine, scale)
                points.append((nodes, point))
                table.add_row(
                    [
                        nodes,
                        point.label,
                        point.custom_speedup,
                        point.automap_speedup,
                    ]
                )
        return points

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    register_result(
        "fig6b_stencil",
        table.render(
            title="Figure 6b — Stencil speedup over DefaultMapper (Shepard)"
        ),
    )

    one_node = [p for nodes, p in points if nodes == 1]
    # Custom == default strategy -> ~1.0 everywhere.
    assert all(0.9 < p.custom_speedup < 1.1 for _, p in points)
    # AM never materially below default; clear win at the smallest grid.
    assert all(p.automap_speedup > 0.95 for _, p in points)
    assert one_node[0].automap_speedup > 1.3
    # Converges: the largest grid's win is much smaller than the peak.
    peak = max(p.automap_speedup for p in one_node)
    assert one_node[-1].automap_speedup < 0.75 * peak or peak < 1.4
